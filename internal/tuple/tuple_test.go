package tuple

import (
	"testing"
	"testing/quick"
	"time"
)

func TestStreamIDString(t *testing.T) {
	if Purchases.String() != "PURCHASES" || Ads.String() != "ADS" {
		t.Fatal("stream names do not match the paper's Listing 1")
	}
	if StreamID(99).String() != "UNKNOWN" {
		t.Fatal("unknown stream should stringify as UNKNOWN")
	}
}

func TestKeyAndJoinKey(t *testing.T) {
	e := Event{UserID: 7, GemPackID: 42}
	if e.Key() != 42 {
		t.Fatalf("aggregation key must be gemPackID: got %d", e.Key())
	}
	jk := e.JoinKey()
	if jk != 7<<32|42 {
		t.Fatalf("unexpected join key packing: %d", jk)
	}
}

func TestJoinKeyInjectiveProperty(t *testing.T) {
	// For ids in the generated range, JoinKey must be injective: two
	// events share a join key iff they share (userID, gemPackID).
	f := func(u1, g1, u2, g2 uint32) bool {
		a := Event{UserID: int64(u1 % (1 << 30)), GemPackID: int64(g1 % (1 << 30))}
		b := Event{UserID: int64(u2 % (1 << 30)), GemPackID: int64(g2 % (1 << 30))}
		same := a.UserID == b.UserID && a.GemPackID == b.GemPackID
		return (a.JoinKey() == b.JoinKey()) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOutputLatencies(t *testing.T) {
	o := Output{
		EventTime: 100 * time.Millisecond,
		ProcTime:  150 * time.Millisecond,
		EmitTime:  600 * time.Millisecond,
	}
	if o.EventTimeLatency() != 500*time.Millisecond {
		t.Fatalf("event-time latency: got %v", o.EventTimeLatency())
	}
	if o.ProcTimeLatency() != 450*time.Millisecond {
		t.Fatalf("processing-time latency: got %v", o.ProcTimeLatency())
	}
	// Processing-time latency is always <= event-time latency when
	// ingestion happens after generation (Section IV of the paper).
	if o.ProcTimeLatency() > o.EventTimeLatency() {
		t.Fatal("processing-time latency exceeded event-time latency")
	}
}

func TestProvenanceObserveTakesMaximum(t *testing.T) {
	var p Provenance
	p.Observe(&Event{EventTime: 580 * time.Second, IngestTime: 601 * time.Second})
	p.Observe(&Event{EventTime: 600 * time.Second, IngestTime: 601 * time.Second})
	p.Observe(&Event{EventTime: 590 * time.Second, IngestTime: 602 * time.Second})
	if p.MaxEventTime != 600*time.Second {
		t.Fatalf("Definition 3 violated: max event-time should be 600s, got %v", p.MaxEventTime)
	}
	if p.MaxProcTime != 602*time.Second {
		t.Fatalf("Definition 4 violated: max proc-time should be 602s, got %v", p.MaxProcTime)
	}
}

func TestProvenancePaperFigure1Example(t *testing.T) {
	// Figure 1 of the paper: the key=US window holds events with times
	// 580, 590, 600; the output carries event-time 600 and, when emitted
	// at time 610, latency 10.
	var p Provenance
	for _, et := range []time.Duration{580, 590, 600} {
		p.Observe(&Event{EventTime: et * time.Second})
	}
	out := Output{EventTime: p.MaxEventTime, EmitTime: 610 * time.Second}
	if got := out.EventTimeLatency(); got != 10*time.Second {
		t.Fatalf("Figure 1 example: want latency 10s, got %v", got)
	}
}

func TestProvenanceMergeCommutative(t *testing.T) {
	f := func(a1, p1, a2, p2 uint32) bool {
		x := Provenance{MaxEventTime: time.Duration(a1), MaxProcTime: time.Duration(p1)}
		y := Provenance{MaxEventTime: time.Duration(a2), MaxProcTime: time.Duration(p2)}
		xy := x
		xy.Merge(y)
		yx := y
		yx.Merge(x)
		return xy == yx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProvenanceMergeIdempotent(t *testing.T) {
	p := Provenance{MaxEventTime: 5 * time.Second, MaxProcTime: 6 * time.Second}
	q := p
	q.Merge(p)
	if q != p {
		t.Fatalf("merge with self changed provenance: %+v vs %+v", q, p)
	}
}
