package driver

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/engine/flink"
	"repro/internal/generator"
	"repro/internal/workload"
)

func probeTestConfig(rate float64) Config {
	return Config{
		Seed:           42,
		Workers:        4,
		Query:          workload.Default(workload.Aggregation),
		EventsPerTuple: 400,
		Rate:           generator.ConstantRate(rate),
		RunFor:         40 * time.Second,
	}
}

// TestProbeRunBitIdenticalToFresh is the arena determinism pin: a run on
// a recycled Probe — after the arena has been dirtied by a different
// prior run — must produce a Result deep-equal to a fresh RunContext run
// of the same config.
func TestProbeRunBitIdenticalToFresh(t *testing.T) {
	eng := flink.New(flink.Options{})
	fresh, err := Run(eng, probeTestConfig(0.6e6))
	if err != nil {
		t.Fatal(err)
	}

	p := NewProbe()
	// Dirty the arena with a run at a different rate and seed.
	dirty := probeTestConfig(1.1e6)
	dirty.Seed = 7
	if _, err := p.Run(context.Background(), eng, dirty); err != nil {
		t.Fatal(err)
	}
	got, err := p.Run(context.Background(), eng, probeTestConfig(0.6e6))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, fresh) {
		t.Fatalf("recycled probe Result differs from fresh run:\nprobe: outputs=%d gen=%d verdict=%+v\nfresh: outputs=%d gen=%d verdict=%+v",
			got.Outputs, got.Generated, got.Verdict, fresh.Outputs, fresh.Generated, fresh.Verdict)
	}
}

// TestProbeReusePerformsLittleAllocation pins the arena's reason to
// exist: steady-state probe runs after the first must perform near-zero
// setup allocation (the bound is loose against GC noise; a regression to
// fresh construction is two orders of magnitude above it).
func TestProbeReusePerformsLittleAllocation(t *testing.T) {
	eng := flink.New(flink.Options{})
	p := NewProbe()
	cfg := probeTestConfig(0.6e6)
	// Warm the arena through two runs so every component has grown.
	for i := 0; i < 2; i++ {
		if _, err := p.Run(context.Background(), eng, cfg); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := p.Run(context.Background(), eng, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 500 {
		t.Fatalf("steady-state probe run allocated %.0f times, want near-zero (fresh construction is ~10k)", allocs)
	}
}

// TestProbeReshapes pins that a probe survives config shape changes
// (worker count, queue fleet) by rebuilding only the mismatching
// components, still bit-identical to fresh runs.
func TestProbeReshapes(t *testing.T) {
	eng := flink.New(flink.Options{})
	p := NewProbe()
	small := probeTestConfig(0.6e6)
	if _, err := p.Run(context.Background(), eng, small); err != nil {
		t.Fatal(err)
	}
	big := probeTestConfig(0.6e6)
	big.Workers = 8
	big.GeneratorInstances = 8
	fresh, err := Run(eng, big)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Run(context.Background(), eng, big)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, fresh) {
		t.Fatal("reshaped probe Result differs from fresh run")
	}
}
