package driver

import (
	"context"
	"sync"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/generator"
	"repro/internal/metrics"
	"repro/internal/queue"
	"repro/internal/sim"
)

// Probe is a reusable run instance: one complete set of simulation
// components — kernel, cluster model, driver queues, generator fleet,
// engine arena (runtime, window state, scratch queues) and metrics
// storage — that Run recycles between runs instead of rebuilding.  The
// sustainable-throughput search runs dozens of probe simulations per
// deployment; with a Probe the steady-state probes after the first
// perform near-zero setup allocation (see DESIGN-PERF.md §8).
//
// A Probe run is bit-identical to a fresh RunContext run: every recycled
// component resets to exactly its freshly-constructed state (kernel
// clock/sequence/RNG streams, queue rings, window tables, metrics), and
// only capacity — ring sizes, table slabs, series backing arrays — is
// carried over.
//
// Ownership: the Result returned by Run, and everything it references
// (latency histograms, every series), lives in the probe's arena and is
// valid only until the next Run or Reset.  Callers that keep a Result —
// the searcher keeps the best probe's — must keep its Probe idle for as
// long as they read the Result.  A Probe must not be used from two
// goroutines at once.
type Probe struct {
	k      *sim.Kernel
	cl     *cluster.Cluster
	queues *queue.Group
	gen    *generator.Generator
	mem    *engine.Mem

	evLat, procLat                                         *metrics.Histogram
	evSeries, procSeries, evMaxSeries, thrSeries, qdSeries *metrics.Series

	// Shape of the recycled components; a mismatching config rebuilds.
	workers   int
	instances int
	capPer    int64
}

// NewProbe returns an empty probe; components materialize on first Run.
func NewProbe() *Probe { return &Probe{} }

// Run executes one benchmark run like RunContext, drawing every component
// from the probe's arena.  Runs with a broker configured fall back to
// fresh construction (the broker topology is not recycled), as do runs
// with a rescale plan (the cluster must be provisioned past cfg.Workers).
func (p *Probe) Run(ctx context.Context, eng engine.Engine, cfg Config) (*Result, error) {
	if cfg.Broker != nil || !cfg.Rescale.Empty() {
		return RunContext(ctx, eng, cfg)
	}
	return runContext(ctx, eng, cfg, p)
}

// components resets (or first builds) the kernel, cluster and queues for
// a run of cfg.  cfg must already carry defaults.
func (p *Probe) components(cfg Config) (*sim.Kernel, *cluster.Cluster, *queue.Group, error) {
	if p.k == nil {
		p.k = sim.NewKernel(cfg.Seed)
	} else {
		p.k.Reset(cfg.Seed)
	}
	if p.cl == nil || p.workers != cfg.Workers {
		cl, err := cluster.New(cluster.DefaultConfig(cfg.Workers))
		if err != nil {
			return nil, nil, nil, err
		}
		p.cl = cl
		p.workers = cfg.Workers
	} else {
		p.cl.Reset()
	}
	if p.queues == nil || p.instances != cfg.GeneratorInstances || p.capPer != cfg.QueueCapPerInstance {
		p.queues = queue.NewGroup("gen", cfg.GeneratorInstances, cfg.QueueCapPerInstance)
		p.instances = cfg.GeneratorInstances
		p.capPer = cfg.QueueCapPerInstance
	} else {
		p.queues.Reset()
	}
	if p.mem == nil {
		p.mem = engine.NewMem()
	}
	return p.k, p.cl, p.queues, nil
}

// generatorFor rebinds (or first builds) the generator fleet.
func (p *Probe) generatorFor(k *sim.Kernel, genCfg generator.Config, queues *queue.Group) (*generator.Generator, error) {
	if p.gen == nil {
		gen, err := generator.New(k, genCfg, queues)
		if err != nil {
			return nil, err
		}
		p.gen = gen
		return gen, nil
	}
	if err := p.gen.Rebind(k, genCfg, queues); err != nil {
		return nil, err
	}
	return p.gen, nil
}

// metricsInto points res at the probe's reset metrics storage.
func (p *Probe) metricsInto(res *Result) {
	if p.evLat == nil {
		p.evLat = metrics.NewHistogram()
		p.procLat = metrics.NewHistogram()
		p.evSeries = metrics.NewSeries("event_latency_s")
		p.procSeries = metrics.NewSeries("processing_latency_s")
		p.evMaxSeries = metrics.NewSeries("event_latency_max_s")
		p.thrSeries = metrics.NewSeries("ingest_rate_ev_s")
		p.qdSeries = metrics.NewSeries("queue_depth_events")
	} else {
		p.evLat.Reset()
		p.procLat.Reset()
		p.evSeries.Reset()
		p.procSeries.Reset()
		p.evMaxSeries.Reset()
		p.thrSeries.Reset()
		p.qdSeries.Reset()
	}
	res.EventLatency = p.evLat
	res.ProcLatency = p.procLat
	res.EventLatencySeries = p.evSeries
	res.ProcLatencySeries = p.procSeries
	res.EventLatencyMaxSeries = p.evMaxSeries
	res.ThroughputSeries = p.thrSeries
	res.QueueDepthSeries = p.qdSeries
}

// probePool is the searcher's free list of probes.  Speculative rounds
// run several probes concurrently (each on its own Probe); the pool is
// the only cross-goroutine touch point, hence the mutex.
type probePool struct {
	mu   sync.Mutex
	free []*Probe
}

// acquire pops a recycled probe or builds a fresh one.
func (pp *probePool) acquire() *Probe {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	if n := len(pp.free); n > 0 {
		p := pp.free[n-1]
		pp.free[n-1] = nil
		pp.free = pp.free[:n-1]
		return p
	}
	return NewProbe()
}

// release hands a probe back once its Result is no longer referenced:
// a mispredicted speculation branch, a consumed unsustainable verdict,
// or a replaced best result.  nil is a no-op.
func (pp *probePool) release(p *Probe) {
	if p == nil {
		return
	}
	pp.mu.Lock()
	pp.free = append(pp.free, p)
	pp.mu.Unlock()
}
