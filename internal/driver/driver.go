// Package driver implements the benchmark driver — the paper's central
// methodological contribution.  The driver is completely separate from the
// system under test: it owns the data generators, the queues between
// generators and SUT sources, and every measurement.  Throughput is
// measured at the queues (ingestion, not output); latency is measured at
// the SUT's sink against the generator's event-time stamps; nothing is
// read from SUT-internal statistics.
//
// The driver also implements the sustainable-throughput search of
// Definition 5: run at a rate, judge divergence of event-time latency and
// driver-queue depth, and bisect.
package driver

import (
	"context"
	"fmt"
	"time"

	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/generator"
	"repro/internal/metrics"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// Config fully describes one benchmark run.
type Config struct {
	// Seed makes the run reproducible.
	Seed uint64
	// Workers is the SUT cluster size (2, 4 or 8 in the paper).
	Workers int
	// GeneratorInstances is the number of parallel generator/queue pairs
	// (the paper used 16).
	GeneratorInstances int
	// EventsPerTuple is the simulation scale: one simulated tuple stands
	// for this many real events.  Rates and weights are always reported
	// in real events.
	EventsPerTuple int64
	// QueueCapPerInstance bounds each driver queue in real events
	// (0 = unbounded).  An overflow halts the run as a failure.
	QueueCapPerInstance int64
	// Rate is the offered-load schedule in real events/second.
	Rate generator.RateSchedule
	// Keys is the gemPackID distribution (normal in the paper's main
	// experiments, single-key in Experiment 4).
	Keys generator.KeyDist
	// Query is the benchmark query.
	Query workload.Query
	// RunFor is the total virtual duration, including warm-up.
	RunFor time.Duration
	// WarmupFraction of RunFor is excluded from the latency histograms
	// and the sustainability judgement (the paper uses 25% of the input
	// as warm-up).
	WarmupFraction float64
	// SampleEvery is the series sampling interval.
	SampleEvery time.Duration
	// EngineTick overrides the engine scheduling quantum.
	EngineTick time.Duration
	// Sustainability overrides the divergence tolerances.
	Sustainability *metrics.SustainabilityConfig
	// WatermarkSlack holds the engines' windows open for out-of-order
	// input (future-work ablation; 0 reproduces the paper).
	WatermarkSlack time.Duration
	// DisorderProb/DisorderMax inject bounded out-of-order event times
	// at the generator (future-work ablation; 0 reproduces the paper).
	DisorderProb float64
	DisorderMax  time.Duration
	// Broker, when non-nil, interposes a Kafka-style message broker
	// between the generators and the SUT sources instead of the paper's
	// direct driver queues — the Section III-A design-decision ablation.
	Broker *broker.Config
	// EventTap, when non-nil, observes every generated event (used by
	// correctness tests to build the oracle's ground-truth log).  The
	// pointee lives in a recycled generator batch and is valid only for
	// the duration of the call — taps that keep events must copy the
	// value out (`log = append(log, *e)`).
	EventTap func(*tuple.Event)
	// OutputTap, when non-nil, observes every SUT output tuple after the
	// driver has measured it (correctness tests compare these against
	// the oracle).
	OutputTap func(*tuple.Output)
}

// WithDefaults fills unset fields with the evaluation's defaults.
func (c Config) WithDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.GeneratorInstances == 0 {
		c.GeneratorInstances = 16
	}
	if c.EventsPerTuple == 0 {
		// One simulated tuple stands for 20 real events: small enough
		// that per-key event gaps (which Definition 3 exposes as
		// latency) stay close to the real system's, large enough that
		// full-rate runs stay fast.
		c.EventsPerTuple = 20
	}
	if c.Keys == nil {
		// Key cardinality is scaled with the event scale so that the
		// per-key event rate — what the windowed outputs' event-time
		// gaps depend on — matches the paper's 1000-key workload at
		// full rate.
		c.Keys = generator.NormalKeys{N: 100}
	}
	if c.RunFor == 0 {
		c.RunFor = 4 * time.Minute
	}
	if c.WarmupFraction == 0 {
		c.WarmupFraction = 0.25
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = time.Second
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Rate == nil {
		return fmt.Errorf("driver: rate schedule is required")
	}
	if c.Workers <= 0 {
		return fmt.Errorf("driver: workers must be positive, got %d", c.Workers)
	}
	if c.WarmupFraction < 0 || c.WarmupFraction >= 1 {
		return fmt.Errorf("driver: warmup fraction must be in [0,1), got %v", c.WarmupFraction)
	}
	return c.Query.Validate()
}

// Result is everything one run measured.
type Result struct {
	Engine  string
	Workers int
	Config  Config

	// EventLatency and ProcLatency are the post-warm-up latency
	// histograms per Definitions 1 and 2 (Tables II and IV).
	EventLatency *metrics.Histogram
	ProcLatency  *metrics.Histogram

	// EventLatencySeries/ProcLatencySeries are mean latency per sample
	// interval over the whole run (Figures 4, 5, 6, 7, 8).
	EventLatencySeries *metrics.Series
	ProcLatencySeries  *metrics.Series
	// EventLatencyMaxSeries is the per-interval maximum (the spikes in
	// the figures).
	EventLatencyMaxSeries *metrics.Series

	// ThroughputSeries is the SUT's ingestion (pull) rate measured at
	// the queues (Figure 9).
	ThroughputSeries *metrics.Series
	// QueueDepthSeries is the total driver-queue depth in real events.
	QueueDepthSeries *metrics.Series

	// CPU and Net are per-node resource usage series (Figure 10).
	CPU []*metrics.Series
	Net []*metrics.Series

	// Extra carries engine-specific series (Spark's scheduler delay for
	// Figure 11).
	Extra map[string]*metrics.Series

	// Outputs is the number of sink tuples observed (all run).
	Outputs int64
	// OutputWeight is their total real-event weight.
	OutputWeight int64
	// Generated is the total real-event weight offered.
	Generated int64
	// Ingested is the total real-event weight the SUT pulled.
	Ingested int64

	// LateDropped is the number of simulated events the SUT dropped for
	// arriving after their windows had fired (non-zero only with
	// out-of-order input and insufficient watermark slack).
	LateDropped int64

	Failed     bool
	FailReason string

	// Verdict is the Definition 5 judgement at this offered rate.
	Verdict metrics.SustainabilityVerdict
}

// OfferedRate returns the average offered rate over the run in events/s.
func (r *Result) OfferedRate() float64 {
	if r.Config.RunFor <= 0 {
		return 0
	}
	return float64(r.Generated) / r.Config.RunFor.Seconds()
}

// Run executes one benchmark run of the query on the engine.
func Run(eng engine.Engine, cfg Config) (*Result, error) {
	return RunContext(context.Background(), eng, cfg)
}

// RunContext is Run with cancellation: when ctx is cancelled the simulation
// halts at the next sample tick and ctx.Err() is returned instead of a
// result.  Cancellation never yields a partial Result, so it cannot
// perturb determinism of completed runs.
func RunContext(ctx context.Context, eng engine.Engine, cfg Config) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	k := sim.NewKernel(cfg.Seed)
	cl, err := cluster.New(cluster.DefaultConfig(cfg.Workers))
	if err != nil {
		return nil, err
	}
	queues := queue.NewGroup("gen", cfg.GeneratorInstances, cfg.QueueCapPerInstance)

	genCfg := generator.Config{
		Instances:      cfg.GeneratorInstances,
		Tick:           10 * time.Millisecond,
		EventsPerTuple: cfg.EventsPerTuple,
		Rate:           cfg.Rate,
		Keys:           cfg.Keys,
		Users:          100_000,
		MaxPrice:       100,
		DisorderProb:   cfg.DisorderProb,
		DisorderMax:    cfg.DisorderMax,
		Tap:            cfg.EventTap,
	}
	if cfg.Query.Type == workload.Join {
		genCfg.AdsShare = 0.3
		genCfg.MatchProb = cfg.Query.Selectivity
	}
	gen, err := generator.New(k, genCfg, queues)
	if err != nil {
		return nil, err
	}

	// Optionally interpose a message broker: the generators then publish
	// into the broker, and the SUT's sources consume the broker's output
	// queues.  Throughput is still measured where the SUT ingests.
	sources := queues
	var brk *broker.Broker
	if cfg.Broker != nil {
		sources = queue.NewGroup("broker-out", cfg.GeneratorInstances, cfg.QueueCapPerInstance)
		brk, err = broker.New(k, *cfg.Broker, queues, sources)
		if err != nil {
			return nil, err
		}
	}

	res := &Result{
		Engine:                eng.Name(),
		Workers:               cfg.Workers,
		Config:                cfg,
		EventLatency:          metrics.NewHistogram(),
		ProcLatency:           metrics.NewHistogram(),
		EventLatencySeries:    metrics.NewSeries("event_latency_s"),
		ProcLatencySeries:     metrics.NewSeries("processing_latency_s"),
		EventLatencyMaxSeries: metrics.NewSeries("event_latency_max_s"),
		ThroughputSeries:      metrics.NewSeries("ingest_rate_ev_s"),
		QueueDepthSeries:      metrics.NewSeries("queue_depth_events"),
	}

	warmupEnd := time.Duration(float64(cfg.RunFor) * cfg.WarmupFraction)

	// Per-interval latency accumulators for the series.
	var (
		sumEv, sumProc float64
		maxEv          float64
		nOut           int64
	)
	sink := func(out *tuple.Output) {
		evLat := out.EventTimeLatency()
		procLat := out.ProcTimeLatency()
		res.Outputs++
		res.OutputWeight += out.Weight
		sumEv += evLat.Seconds()
		sumProc += procLat.Seconds()
		if evLat.Seconds() > maxEv {
			maxEv = evLat.Seconds()
		}
		nOut++
		// Histograms exclude warm-up, keyed on emission time.
		if out.EmitTime >= warmupEnd {
			res.EventLatency.Record(evLat)
			res.ProcLatency.Record(procLat)
		}
		if cfg.OutputTap != nil {
			cfg.OutputTap(out)
		}
	}

	job, err := eng.Deploy(k, engine.Config{
		Cluster:        cl,
		Query:          cfg.Query,
		Sources:        sources,
		Sink:           sink,
		Tick:           cfg.EngineTick,
		EventWeight:    cfg.EventsPerTuple,
		WatermarkSlack: cfg.WatermarkSlack,
	})
	if err != nil {
		return nil, err
	}

	// Samplers.
	var lastOut int64
	k.Every(cfg.SampleEvery, func(now sim.Time) {
		if nOut > 0 {
			res.EventLatencySeries.Add(now, sumEv/float64(nOut))
			res.ProcLatencySeries.Add(now, sumProc/float64(nOut))
			res.EventLatencyMaxSeries.Add(now, maxEv)
			sumEv, sumProc, maxEv, nOut = 0, 0, 0, 0
		}
		out := sources.TotalOut()
		res.ThroughputSeries.Add(now, float64(out-lastOut)/cfg.SampleEvery.Seconds())
		lastOut = out
		depth := queues.Weight()
		if brk != nil {
			depth += brk.Backlog() + sources.Weight()
		}
		res.QueueDepthSeries.Add(now, float64(depth))
		// A queue overflow means a generator could no longer buffer:
		// halt immediately, as the paper's driver does.
		if queues.Overflowed() || (brk != nil && sources.Overflowed()) {
			k.Halt()
		}
		if failed, _ := job.Failed(); failed {
			k.Halt()
		}
		// Cancellation: virtual sample ticks pass every few wall-clock
		// microseconds, so this bounds the abort latency tightly without
		// touching the per-event hot path.
		if ctx.Err() != nil {
			k.Halt()
		}
	})
	cl.StartRecorder(k, cfg.SampleEvery)

	gen.Start()
	if brk != nil {
		brk.Start()
	}
	job.Start()
	k.Run(cfg.RunFor)
	job.Stop()
	if brk != nil {
		brk.Stop()
	}
	gen.Stop()

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res.Generated = gen.TotalWeight()
	res.Ingested = sources.TotalOut()
	if ld, ok := job.(interface{ LateDropped() int64 }); ok {
		res.LateDropped = ld.LateDropped()
	}
	res.CPU = cl.CPUSeries()
	res.Net = cl.NetSeries()
	res.Extra = job.ExtraSeries()

	if failed, reason := job.Failed(); failed {
		res.Failed, res.FailReason = true, reason
	}
	if queues.Overflowed() || (brk != nil && sources.Overflowed()) {
		res.Failed = true
		if res.FailReason == "" {
			res.FailReason = "driver queue overflow: SUT could not keep a connection drained"
		}
	}
	// A SUT that stopped emitting entirely during the measured window is
	// stalled even if it never reported failure.
	if res.Outputs == 0 {
		res.Failed = true
		if res.FailReason == "" {
			res.FailReason = "SUT emitted no output tuples"
		}
	}

	scfg := metrics.DefaultSustainabilityConfig()
	if cfg.Sustainability != nil {
		scfg = *cfg.Sustainability
	}
	res.Verdict = metrics.JudgeSustainability(
		scfg,
		res.EventLatencySeries.Tail(warmupEnd),
		res.QueueDepthSeries.Tail(warmupEnd),
		res.Generated,
		res.Failed,
		res.FailReason,
	)
	return res, nil
}

// SearchConfig tunes FindSustainable.
type SearchConfig struct {
	// Lo and Hi bracket the search in events/second.  Hi should exceed
	// any plausible capacity ("we run each of the systems with a very
	// high generation rate and decrease it").
	Lo, Hi float64
	// Resolution stops the bisection when hi/lo converges below it
	// (e.g. 0.02 = 2%).
	Resolution float64
	// ProbeRunFor shortens probe runs relative to Config.RunFor
	// (0 = use Config.RunFor).
	ProbeRunFor time.Duration
	// ProbeEventsPerTuple coarsens the probes' simulation scale (queue
	// divergence does not need fine-grained latency fidelity); 0 means
	// 200 real events per simulated tuple.
	ProbeEventsPerTuple int64
}

// WithDefaults fills unset fields.
func (s SearchConfig) WithDefaults() SearchConfig {
	if s.Lo <= 0 {
		s.Lo = 0.02e6
	}
	if s.Hi <= s.Lo {
		s.Hi = 2e6
	}
	if s.Resolution <= 0 {
		s.Resolution = 0.02
	}
	if s.ProbeRunFor > 0 && s.ProbeRunFor < 75*time.Second {
		s.ProbeRunFor = 75 * time.Second
	}
	if s.ProbeEventsPerTuple == 0 {
		s.ProbeEventsPerTuple = 200
	}
	return s
}

// FindSustainable bisects for the maximum sustainable throughput
// (Definition 5) of the deployment described by base.  base.Rate is
// ignored; each probe runs at a constant candidate rate.  It returns the
// highest rate judged sustainable and that rate's full Result.
func FindSustainable(eng engine.Engine, base Config, scfg SearchConfig) (float64, *Result, error) {
	return FindSustainableContext(context.Background(), eng, base, scfg)
}

// FindSustainableContext is FindSustainable with cancellation; a cancelled
// ctx aborts the bisection mid-probe.
func FindSustainableContext(ctx context.Context, eng engine.Engine, base Config, scfg SearchConfig) (float64, *Result, error) {
	scfg = scfg.WithDefaults()
	base = base.WithDefaults()
	if scfg.ProbeRunFor > 0 {
		base.RunFor = scfg.ProbeRunFor
	}
	base.EventsPerTuple = scfg.ProbeEventsPerTuple
	// A probe must observe several complete windows after warm-up, or a
	// large-window query would be judged "no output" at any rate.
	minRun := time.Duration(float64(base.Query.WindowSize+4*base.Query.WindowSlide) / (1 - base.WarmupFraction))
	if base.RunFor < minRun {
		base.RunFor = minRun
	}

	probeN := uint64(0)
	probe := func(rate float64) (*Result, error) {
		cfg := base
		cfg.Rate = generator.ConstantRate(rate)
		// Each probe gets its own seed so the transient-episode schedule
		// is sampled independently; otherwise every probe would dodge
		// (or hit) the exact same episodes.
		cfg.Seed = base.Seed + probeN*1_000_003
		probeN++
		return RunContext(ctx, eng, cfg)
	}

	lo, hi := scfg.Lo, scfg.Hi
	// Establish a sustainable floor; if even Lo is unsustainable, report
	// failure via the floor probe's result.
	loRes, err := probe(lo)
	if err != nil {
		return 0, nil, err
	}
	if !loRes.Verdict.Sustainable {
		return 0, loRes, nil
	}
	best, bestRes := lo, loRes

	for hi-lo > scfg.Resolution*hi {
		mid := (lo + hi) / 2
		r, err := probe(mid)
		if err != nil {
			return 0, nil, err
		}
		if r.Verdict.Sustainable {
			lo, best, bestRes = mid, mid, r
		} else {
			hi = mid
		}
	}
	return best, bestRes, nil
}
