// Package driver implements the benchmark driver — the paper's central
// methodological contribution.  The driver is completely separate from the
// system under test: it owns the data generators, the queues between
// generators and SUT sources, and every measurement.  Throughput is
// measured at the queues (ingestion, not output); latency is measured at
// the SUT's sink against the generator's event-time stamps; nothing is
// read from SUT-internal statistics.
//
// The driver also implements the sustainable-throughput search of
// Definition 5: run at a rate, judge divergence of event-time latency and
// driver-queue depth, and bisect.
package driver

import (
	"context"
	"fmt"
	"math/bits"
	"time"

	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/generator"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// Config fully describes one benchmark run.
type Config struct {
	// Seed makes the run reproducible.
	Seed uint64
	// Workers is the SUT cluster size (2, 4 or 8 in the paper).
	Workers int
	// GeneratorInstances is the number of parallel generator/queue pairs
	// (the paper used 16).
	GeneratorInstances int
	// EventsPerTuple is the simulation scale: one simulated tuple stands
	// for this many real events.  Rates and weights are always reported
	// in real events.
	EventsPerTuple int64
	// QueueCapPerInstance bounds each driver queue in real events
	// (0 = unbounded).  An overflow halts the run as a failure.
	QueueCapPerInstance int64
	// Rate is the offered-load schedule in real events/second.
	Rate generator.RateSchedule
	// Keys is the gemPackID distribution (normal in the paper's main
	// experiments, single-key in Experiment 4).
	Keys generator.KeyDist
	// Query is the benchmark query.
	Query workload.Query
	// RunFor is the total virtual duration, including warm-up.
	RunFor time.Duration
	// WarmupFraction of RunFor is excluded from the latency histograms
	// and the sustainability judgement (the paper uses 25% of the input
	// as warm-up).
	WarmupFraction float64
	// SampleEvery is the series sampling interval.
	SampleEvery time.Duration
	// EngineTick overrides the engine scheduling quantum.
	EngineTick time.Duration
	// Sustainability overrides the divergence tolerances.
	Sustainability *metrics.SustainabilityConfig
	// WatermarkSlack holds the engines' windows open for out-of-order
	// input (future-work ablation; 0 reproduces the paper).
	WatermarkSlack time.Duration
	// DisorderProb/DisorderMax inject bounded out-of-order event times
	// at the generator (future-work ablation; 0 reproduces the paper).
	DisorderProb float64
	DisorderMax  time.Duration
	// Faults, when non-nil, is the run's deterministic fault schedule
	// (kill worker i at virtual time t, transient ingestion stalls); the
	// engine runtime scales its source pulls by the schedule's capacity
	// factor.  nil reproduces the paper's fault-free runs exactly.
	Faults *fault.Schedule
	// Rescale, when non-nil, is the run's elastic-rescaling plan: the
	// worker set becomes a function of virtual time, with Workers as the
	// count before the first step.  The cluster is provisioned for the
	// plan's maximum so scale-out never reallocates; each step pays the
	// engine's modeled transition cost.  nil reproduces the static runs
	// exactly.
	Rescale *fault.RescalePlan
	// Broker, when non-nil, interposes a Kafka-style message broker
	// between the generators and the SUT sources instead of the paper's
	// direct driver queues — the Section III-A design-decision ablation.
	Broker *broker.Config
	// EventTap, when non-nil, observes every generated event (used by
	// correctness tests to build the oracle's ground-truth log).  The
	// pointee lives in a recycled generator batch and is valid only for
	// the duration of the call — taps that keep events must copy the
	// value out (`log = append(log, *e)`).
	EventTap func(*tuple.Event)
	// OutputTap, when non-nil, observes every SUT output tuple after the
	// driver has measured it (correctness tests compare these against
	// the oracle).  The pointee lives in the engine runtime's reusable
	// emission scratch and is valid only for the duration of the call —
	// taps that keep outputs must copy the value out.
	OutputTap func(*tuple.Output)
}

// WithDefaults fills unset fields with the evaluation's defaults.
func (c Config) WithDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.GeneratorInstances == 0 {
		c.GeneratorInstances = 16
	}
	if c.EventsPerTuple == 0 {
		// One simulated tuple stands for 20 real events: small enough
		// that per-key event gaps (which Definition 3 exposes as
		// latency) stay close to the real system's, large enough that
		// full-rate runs stay fast.
		c.EventsPerTuple = 20
	}
	if c.Keys == nil {
		// Key cardinality is scaled with the event scale so that the
		// per-key event rate — what the windowed outputs' event-time
		// gaps depend on — matches the paper's 1000-key workload at
		// full rate.
		c.Keys = generator.NormalKeys{N: 100}
	}
	if c.RunFor == 0 {
		c.RunFor = 4 * time.Minute
	}
	if c.WarmupFraction == 0 {
		c.WarmupFraction = 0.25
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = time.Second
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Rate == nil {
		return fmt.Errorf("driver: rate schedule is required")
	}
	if c.Workers <= 0 {
		return fmt.Errorf("driver: workers must be positive, got %d", c.Workers)
	}
	if c.WarmupFraction < 0 || c.WarmupFraction >= 1 {
		return fmt.Errorf("driver: warmup fraction must be in [0,1), got %v", c.WarmupFraction)
	}
	if err := c.Rescale.Validate(); err != nil {
		return fmt.Errorf("driver: %w", err)
	}
	// Fault targets are bounded by the largest worker set the run ever
	// has: a worker that only exists after a scale-out step is a valid
	// target (its factor is simply unused while it is inactive).
	if err := c.Faults.Validate(c.Rescale.MaxWorkers(c.Workers)); err != nil {
		return fmt.Errorf("driver: %w", err)
	}
	return c.Query.Validate()
}

// Result is everything one run measured.
type Result struct {
	Engine  string
	Workers int
	Config  Config

	// EventLatency and ProcLatency are the post-warm-up latency
	// histograms per Definitions 1 and 2 (Tables II and IV).
	EventLatency *metrics.Histogram
	ProcLatency  *metrics.Histogram

	// EventLatencySeries/ProcLatencySeries are mean latency per sample
	// interval over the whole run (Figures 4, 5, 6, 7, 8).
	EventLatencySeries *metrics.Series
	ProcLatencySeries  *metrics.Series
	// EventLatencyMaxSeries is the per-interval maximum (the spikes in
	// the figures).
	EventLatencyMaxSeries *metrics.Series

	// ThroughputSeries is the SUT's ingestion (pull) rate measured at
	// the queues (Figure 9).
	ThroughputSeries *metrics.Series
	// QueueDepthSeries is the total driver-queue depth in real events.
	QueueDepthSeries *metrics.Series

	// CPU and Net are per-node resource usage series (Figure 10).
	CPU []*metrics.Series
	Net []*metrics.Series

	// Extra carries engine-specific series (Spark's scheduler delay for
	// Figure 11).
	Extra map[string]*metrics.Series

	// Outputs is the number of sink tuples observed (all run).
	Outputs int64
	// OutputWeight is their total real-event weight.
	OutputWeight int64
	// Generated is the total real-event weight offered.
	Generated int64
	// Ingested is the total real-event weight the SUT pulled.
	Ingested int64

	// LateDropped is the number of simulated events the SUT dropped for
	// arriving after their windows had fired (non-zero only with
	// out-of-order input and insufficient watermark slack).
	LateDropped int64

	Failed     bool
	FailReason string

	// Verdict is the Definition 5 judgement at this offered rate.
	Verdict metrics.SustainabilityVerdict
}

// OfferedRate returns the average offered rate over the run in events/s.
func (r *Result) OfferedRate() float64 {
	if r.Config.RunFor <= 0 {
		return 0
	}
	return float64(r.Generated) / r.Config.RunFor.Seconds()
}

// Run executes one benchmark run of the query on the engine.
func Run(eng engine.Engine, cfg Config) (*Result, error) {
	return RunContext(context.Background(), eng, cfg)
}

// RunContext is Run with cancellation: when ctx is cancelled the simulation
// halts at the next sample tick and ctx.Err() is returned instead of a
// result.  Cancellation never yields a partial Result, so it cannot
// perturb determinism of completed runs.
func RunContext(ctx context.Context, eng engine.Engine, cfg Config) (*Result, error) {
	return runContext(ctx, eng, cfg, nil)
}

// runContext executes one run.  With a non-nil probe the kernel, cluster,
// queues, generator, engine arena and metrics storage are recycled from
// it (see Probe); with nil everything is built fresh.  Both paths are
// bit-identical.
func runContext(ctx context.Context, eng engine.Engine, cfg Config, probe *Probe) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	var (
		k      *sim.Kernel
		cl     *cluster.Cluster
		queues *queue.Group
		err    error
	)
	if probe != nil {
		k, cl, queues, err = probe.components(cfg)
		if err != nil {
			return nil, err
		}
	} else {
		k = sim.NewKernel(cfg.Seed)
		// Provision for the rescale plan's maximum worker count (the
		// plan-free maximum is cfg.Workers itself), then start with only
		// cfg.Workers in service; the engine runtime walks the active
		// count along the plan every tick.
		cl, err = cluster.New(cluster.DefaultConfig(cfg.Rescale.MaxWorkers(cfg.Workers)))
		if err != nil {
			return nil, err
		}
		cl.SetActive(cfg.Workers)
		queues = queue.NewGroup("gen", cfg.GeneratorInstances, cfg.QueueCapPerInstance)
	}

	genCfg := generator.Config{
		Instances:      cfg.GeneratorInstances,
		Tick:           10 * time.Millisecond,
		EventsPerTuple: cfg.EventsPerTuple,
		Rate:           cfg.Rate,
		Keys:           cfg.Keys,
		Users:          100_000,
		MaxPrice:       100,
		DisorderProb:   cfg.DisorderProb,
		DisorderMax:    cfg.DisorderMax,
		Tap:            cfg.EventTap,
	}
	if cfg.Query.Type == workload.Join {
		genCfg.AdsShare = 0.3
		genCfg.MatchProb = cfg.Query.Selectivity
	}
	var gen *generator.Generator
	if probe != nil {
		gen, err = probe.generatorFor(k, genCfg, queues)
	} else {
		gen, err = generator.New(k, genCfg, queues)
	}
	if err != nil {
		return nil, err
	}

	// Optionally interpose a message broker: the generators then publish
	// into the broker, and the SUT's sources consume the broker's output
	// queues.  Throughput is still measured where the SUT ingests.
	sources := queues
	var brk *broker.Broker
	if cfg.Broker != nil {
		sources = queue.NewGroup("broker-out", cfg.GeneratorInstances, cfg.QueueCapPerInstance)
		brk, err = broker.New(k, *cfg.Broker, queues, sources)
		if err != nil {
			return nil, err
		}
	}

	res := &Result{
		Engine:  eng.Name(),
		Workers: cfg.Workers,
		Config:  cfg,
	}
	if probe != nil {
		probe.metricsInto(res)
	} else {
		res.EventLatency = metrics.NewHistogram()
		res.ProcLatency = metrics.NewHistogram()
		res.EventLatencySeries = metrics.NewSeries("event_latency_s")
		res.ProcLatencySeries = metrics.NewSeries("processing_latency_s")
		res.EventLatencyMaxSeries = metrics.NewSeries("event_latency_max_s")
		res.ThroughputSeries = metrics.NewSeries("ingest_rate_ev_s")
		res.QueueDepthSeries = metrics.NewSeries("queue_depth_events")
	}

	warmupEnd := time.Duration(float64(cfg.RunFor) * cfg.WarmupFraction)

	// Per-interval latency accumulators for the series.
	var (
		sumEv, sumProc float64
		maxEv          float64
		nOut           int64
	)
	sink := func(out *tuple.Output) {
		evLat := out.EventTimeLatency()
		procLat := out.ProcTimeLatency()
		res.Outputs++
		res.OutputWeight += out.Weight
		sumEv += evLat.Seconds()
		sumProc += procLat.Seconds()
		if evLat.Seconds() > maxEv {
			maxEv = evLat.Seconds()
		}
		nOut++
		// Histograms exclude warm-up, keyed on emission time.
		if out.EmitTime >= warmupEnd {
			res.EventLatency.Record(evLat)
			res.ProcLatency.Record(procLat)
		}
		if cfg.OutputTap != nil {
			cfg.OutputTap(out)
		}
	}

	var mem *engine.Mem
	if probe != nil {
		mem = probe.mem
	}
	job, err := eng.Deploy(k, engine.Config{
		Cluster:        cl,
		Query:          cfg.Query,
		Sources:        sources,
		Sink:           sink,
		Tick:           cfg.EngineTick,
		EventWeight:    cfg.EventsPerTuple,
		WatermarkSlack: cfg.WatermarkSlack,
		Mem:            mem,
		Faults:         cfg.Faults,
		Rescale:        cfg.Rescale,
	})
	if err != nil {
		return nil, err
	}

	// Samplers.
	var lastOut int64
	k.Every(cfg.SampleEvery, func(now sim.Time) {
		if nOut > 0 {
			res.EventLatencySeries.Add(now, sumEv/float64(nOut))
			res.ProcLatencySeries.Add(now, sumProc/float64(nOut))
			res.EventLatencyMaxSeries.Add(now, maxEv)
			sumEv, sumProc, maxEv, nOut = 0, 0, 0, 0
		}
		out := sources.TotalOut()
		res.ThroughputSeries.Add(now, float64(out-lastOut)/cfg.SampleEvery.Seconds())
		lastOut = out
		depth := queues.Weight()
		if brk != nil {
			depth += brk.Backlog() + sources.Weight()
		}
		res.QueueDepthSeries.Add(now, float64(depth))
		// A queue overflow means a generator could no longer buffer:
		// halt immediately, as the paper's driver does.
		if queues.Overflowed() || (brk != nil && sources.Overflowed()) {
			k.Halt()
		}
		if failed, _ := job.Failed(); failed {
			k.Halt()
		}
		// Cancellation: virtual sample ticks pass every few wall-clock
		// microseconds, so this bounds the abort latency tightly without
		// touching the per-event hot path.
		if ctx.Err() != nil {
			k.Halt()
		}
	})
	cl.StartRecorder(k, cfg.SampleEvery)

	gen.Start()
	if brk != nil {
		brk.Start()
	}
	job.Start()
	k.Run(cfg.RunFor)
	job.Stop()
	if brk != nil {
		brk.Stop()
	}
	gen.Stop()

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res.Generated = gen.TotalWeight()
	res.Ingested = sources.TotalOut()
	if ld, ok := job.(interface{ LateDropped() int64 }); ok {
		res.LateDropped = ld.LateDropped()
	}
	res.CPU = cl.CPUSeries()
	res.Net = cl.NetSeries()
	res.Extra = job.ExtraSeries()

	if failed, reason := job.Failed(); failed {
		res.Failed, res.FailReason = true, reason
	}
	if queues.Overflowed() || (brk != nil && sources.Overflowed()) {
		res.Failed = true
		if res.FailReason == "" {
			res.FailReason = "driver queue overflow: SUT could not keep a connection drained"
		}
	}
	// A SUT that stopped emitting entirely during the measured window is
	// stalled even if it never reported failure.
	if res.Outputs == 0 {
		res.Failed = true
		if res.FailReason == "" {
			res.FailReason = "SUT emitted no output tuples"
		}
	}

	scfg := metrics.DefaultSustainabilityConfig()
	if cfg.Sustainability != nil {
		scfg = *cfg.Sustainability
	}
	res.Verdict = metrics.JudgeSustainability(
		scfg,
		res.EventLatencySeries.Tail(warmupEnd),
		res.QueueDepthSeries.Tail(warmupEnd),
		res.Generated,
		res.Failed,
		res.FailReason,
	)
	return res, nil
}

// SearchConfig tunes FindSustainable.
type SearchConfig struct {
	// Lo and Hi bracket the search in events/second.  Hi should exceed
	// any plausible capacity ("we run each of the systems with a very
	// high generation rate and decrease it").
	Lo, Hi float64
	// Resolution stops the bisection when hi/lo converges below it
	// (e.g. 0.02 = 2%).
	Resolution float64
	// ProbeRunFor shortens probe runs relative to Config.RunFor
	// (0 = use Config.RunFor).
	ProbeRunFor time.Duration
	// ProbeEventsPerTuple coarsens the probes' simulation scale (queue
	// divergence does not need fine-grained latency fidelity); 0 means
	// 200 real events per simulated tuple.
	ProbeEventsPerTuple int64
	// Speculate caps the number of probe simulations launched
	// concurrently per speculative round (see DESIGN-PERF.md §6).  The
	// converged rate and Result are bit-identical for every value: the
	// search always consumes probes in the sequential bisection order and
	// discards mispredicted branches.  0 = adapt to the spare worker
	// capacity (and to GOMAXPROCS); 1 = strictly sequential.
	Speculate int
	// WarmLo/WarmHi, when 0 < WarmLo < WarmHi, seed the bracket from a
	// prior search of the same deployment (widened by the resolution
	// margin and clipped to [Lo, Hi]).  If the prior bracket no longer
	// brackets the answer — its floor probe is unsustainable, or every
	// probe up to its ceiling is sustainable (the true rate may sit
	// above it) — the search falls back to the cold [Lo, Hi] bracket and
	// returns exactly the cold result.  Warm-started searches probe a
	// much narrower bracket, so they are faster but not bit-identical to
	// a cold search — leave both zero where byte-reproducibility matters.
	WarmLo, WarmHi float64
	// Stats, when non-nil, receives the search accounting.
	Stats *SearchStats
}

// SearchStats reports what a sustainable-throughput search did.
type SearchStats struct {
	// Probes is the number of probe verdicts consumed by the bracket
	// walk — identical to the probe count of a sequential bisection.
	Probes int
	// Speculative is the number of probe simulations launched, including
	// mispredicted branches that were discarded.
	Speculative int
	// Rounds is the number of speculative rounds (bracket updates happen
	// Probes times; rounds batch them).
	Rounds int
	// WarmStart reports whether a prior bracket seeded the search (false
	// when the warm floor probe failed and the search fell back cold).
	WarmStart bool
	// FinalLo and FinalHi are the converged bracket: FinalLo is the
	// highest rate judged sustainable, FinalHi the lowest judged not.
	// They are what a warm start feeds back into WarmLo/WarmHi.
	FinalLo, FinalHi float64
}

// WithDefaults fills unset fields.
func (s SearchConfig) WithDefaults() SearchConfig {
	if s.Lo <= 0 {
		s.Lo = 0.02e6
	}
	if s.Hi <= s.Lo {
		s.Hi = 2e6
	}
	if s.Resolution <= 0 {
		s.Resolution = 0.02
	}
	if s.ProbeRunFor > 0 && s.ProbeRunFor < 75*time.Second {
		s.ProbeRunFor = 75 * time.Second
	}
	if s.ProbeEventsPerTuple == 0 {
		s.ProbeEventsPerTuple = 200
	}
	return s
}

// FindSustainable bisects for the maximum sustainable throughput
// (Definition 5) of the deployment described by base.  base.Rate is
// ignored; each probe runs at a constant candidate rate.  It returns the
// highest rate judged sustainable and that rate's full Result.
func FindSustainable(eng engine.Engine, base Config, scfg SearchConfig) (float64, *Result, error) {
	return FindSustainableContext(context.Background(), eng, base, scfg)
}

// FindSustainableContext is FindSustainable with cancellation; a cancelled
// ctx aborts the bisection mid-probe.
//
// The bisection is speculative (DESIGN-PERF.md §6): each round launches the
// probes of the next few bracket-update steps — the midpoint plus both
// midpoints each verdict could lead to, and so on — concurrently on the
// process worker budget (internal/par), then replays the sequential
// bracket-update rule over the completed verdicts, discarding the branches
// not taken.  Probe seeds depend only on the probe's position in the
// sequential order, so the converged rate and the returned Result are
// bit-identical to a strictly sequential search at any parallelism
// (including GOMAXPROCS=1, where the search degenerates to exactly the
// sequential probe-per-round loop).
func FindSustainableContext(ctx context.Context, eng engine.Engine, base Config, scfg SearchConfig) (float64, *Result, error) {
	if !base.Rescale.Empty() {
		return 0, nil, fmt.Errorf("driver: the sustainable-throughput search assumes a steady worker set; rescale plans are not supported")
	}
	scfg = scfg.WithDefaults()
	base = base.WithDefaults()
	if scfg.ProbeRunFor > 0 {
		base.RunFor = scfg.ProbeRunFor
	}
	base.EventsPerTuple = scfg.ProbeEventsPerTuple
	// A probe must observe several complete windows after warm-up, or a
	// large-window query would be judged "no output" at any rate.
	minRun := time.Duration(float64(base.Query.WindowSize+4*base.Query.WindowSlide) / (1 - base.WarmupFraction))
	if base.RunFor < minRun {
		base.RunFor = minRun
	}

	s := &searcher{ctx: ctx, eng: eng, base: base, scfg: scfg}
	if scfg.Stats != nil {
		defer func() { *scfg.Stats = s.stats }()
	}

	// Warm start: search the (widened, clipped) prior bracket first.  The
	// warm result is only trusted if the bracket still brackets the
	// answer on both sides: the floor probe must be sustainable (the rate
	// did not drift below the bracket) and some probe must have been
	// judged unsustainable (FinalHi moved below the warm ceiling — the
	// rate did not drift above it; a ceiling at the global Hi has nothing
	// above it to miss).  Otherwise fall back to the cold search — probe
	// numbering restarts at zero, making the fallback bit-identical to a
	// search that never warm-started.
	if wlo, whi, ok := warmBracket(scfg); ok {
		rate, res, resProbe, floorOK, err := s.bisect(wlo, whi)
		if err != nil {
			return 0, nil, err
		}
		if floorOK && (s.stats.FinalHi < whi || whi >= scfg.Hi) {
			s.stats.WarmStart = true
			return rate, res, nil
		}
		// The warm result is discarded; its probe arena is free for the
		// cold search to recycle.
		s.pool.release(resProbe)
		s.probeN = 0
	}

	rate, res, _, floorOK, err := s.bisect(scfg.Lo, scfg.Hi)
	if err != nil {
		return 0, nil, err
	}
	if !floorOK {
		// Even the floor rate is unsustainable: report failure via the
		// floor probe's result.
		return 0, res, nil
	}
	return rate, res, nil
}

// warmBracket widens a prior bracket by twice the resolution (the prior
// answer came from a possibly different seed or probe scale) and clips it
// into [Lo, Hi].
func warmBracket(scfg SearchConfig) (float64, float64, bool) {
	if scfg.WarmLo <= 0 || scfg.WarmHi <= scfg.WarmLo {
		return 0, 0, false
	}
	wlo := scfg.WarmLo * (1 - 2*scfg.Resolution)
	whi := scfg.WarmHi * (1 + 2*scfg.Resolution)
	if wlo < scfg.Lo {
		wlo = scfg.Lo
	}
	if whi > scfg.Hi {
		whi = scfg.Hi
	}
	if whi <= wlo {
		return 0, 0, false
	}
	return wlo, whi, true
}

// autoSpeculate is the per-round probe cap when SearchConfig.Speculate is
// 0: a 3-level speculation tree (7 probes resolving 3 bracket steps per
// round) when the worker budget allows it.
const autoSpeculate = 7

// maxSpecLevels bounds the speculation depth: each extra level doubles the
// probe cost of a round but adds only one bracket step of wall-clock win.
const maxSpecLevels = 5

// searcher carries one sustainable-throughput search: the probe context,
// the sequential probe numbering (which fixes each probe's RNG seed), the
// pool of reusable probe run instances, and the accounting.
type searcher struct {
	ctx    context.Context
	eng    engine.Engine
	base   Config
	scfg   SearchConfig
	probeN uint64
	stats  SearchStats
	pool   probePool
}

// probeAt runs one probe simulation at the given rate with the seed of
// sequential probe number n, on a recycled Probe arena from the pool.
// Each probe number gets its own seed so the transient-episode schedule
// is sampled independently; otherwise every probe would dodge (or hit)
// the exact same episodes.  The returned Result lives in the returned
// Probe's arena; the caller owns both until it releases the Probe.
func (s *searcher) probeAt(rate float64, n uint64) (*Result, *Probe, error) {
	cfg := s.base
	cfg.Rate = generator.ConstantRate(rate)
	cfg.Seed = s.base.Seed + n*1_000_003
	if cfg.Broker != nil {
		res, err := RunContext(s.ctx, s.eng, cfg)
		return res, nil, err
	}
	p := s.pool.acquire()
	res, err := p.Run(s.ctx, s.eng, cfg)
	if err != nil {
		s.pool.release(p)
		return nil, nil, err
	}
	return res, p, nil
}

// specNode is one node of a round's speculation tree: the bracket the
// sequential search would hold if the path of verdicts leading here were
// taken, and the probe outcome at that bracket's midpoint.  Children: index
// 2i+1 is the "unsustainable" branch (hi=mid), 2i+2 the "sustainable"
// branch (lo=mid).
type specNode struct {
	lo, hi   float64
	live     bool
	consumed bool
	res      *Result
	probe    *Probe
	err      error
}

// roundLevels returns how many bracket steps the next round speculates
// across, sized so the full tree (2^levels - 1 probes) fits the per-round
// cap and the currently spare worker capacity.
func (s *searcher) roundLevels() int {
	budget := s.scfg.Speculate
	if budget <= 0 {
		budget = autoSpeculate
	}
	if spare := par.Spare() + 1; budget > spare {
		budget = spare
	}
	levels := bits.Len(uint(budget+1)) - 1
	if levels < 1 {
		levels = 1
	}
	if levels > maxSpecLevels {
		levels = maxSpecLevels
	}
	return levels
}

// converged is the bisection's termination predicate on a bracket.
func (s *searcher) converged(lo, hi float64) bool {
	return hi-lo <= s.scfg.Resolution*hi
}

// bisect runs the (speculative) bisection over [lo, hi].  It returns the
// converged rate, its Result and the Probe arena holding that Result,
// with floorOK=false when the floor probe at lo was judged unsustainable
// (res then is the floor probe's Result).  Probes whose results are
// discarded along the way — mispredicted speculation branches, consumed
// unsustainable verdicts, replaced bests — are released back to the pool
// for the next round to recycle.
func (s *searcher) bisect(lo, hi float64) (float64, *Result, *Probe, bool, error) {
	loRes, loProbe, err := s.probeAt(lo, s.probeN)
	s.stats.Speculative++
	if err != nil {
		return 0, nil, nil, false, err
	}
	s.probeN++
	s.stats.Probes++
	if !loRes.Verdict.Sustainable {
		s.stats.FinalLo, s.stats.FinalHi = 0, lo
		return 0, loRes, loProbe, false, nil
	}
	best, bestRes, bestProbe := lo, loRes, loProbe

	for !s.converged(lo, hi) {
		s.stats.Rounds++
		nodes := s.buildTree(lo, hi, s.roundLevels())
		s.launch(nodes)

		// Replay the sequential bracket-update rule over the verdicts.
		idx := 0
		for idx < len(nodes) && nodes[idx].live && !s.converged(lo, hi) {
			nd := &nodes[idx]
			if nd.err != nil {
				return 0, nil, nil, false, nd.err
			}
			nd.consumed = true
			s.probeN++
			s.stats.Probes++
			mid := (lo + hi) / 2
			if nd.res.Verdict.Sustainable {
				s.pool.release(bestProbe)
				lo, best, bestRes, bestProbe = mid, mid, nd.res, nd.probe
				idx = 2*idx + 2
			} else {
				s.pool.release(nd.probe)
				hi = mid
				idx = 2*idx + 1
			}
		}
		// Mispredicted (launched but never consumed) branches are dead:
		// recycle their arenas.
		for i := range nodes {
			if !nodes[i].consumed {
				s.pool.release(nodes[i].probe)
			}
		}
	}
	s.stats.FinalLo, s.stats.FinalHi = best, hi
	return best, bestRes, bestProbe, true, nil
}

// buildTree lays out the round's speculation tree in heap order.  A node is
// live when the sequential search could actually reach it: its bracket is
// not yet converged (a converged bracket ends the walk, so its subtree can
// never be consumed and is pruned from launching).
func (s *searcher) buildTree(lo, hi float64, levels int) []specNode {
	nodes := make([]specNode, 1<<levels-1)
	nodes[0] = specNode{lo: lo, hi: hi, live: true}
	for i := range nodes {
		if !nodes[i].live || 2*i+2 >= len(nodes) {
			continue
		}
		mid := (nodes[i].lo + nodes[i].hi) / 2
		if !s.converged(nodes[i].lo, mid) {
			nodes[2*i+1] = specNode{lo: nodes[i].lo, hi: mid, live: true}
		}
		if !s.converged(mid, nodes[i].hi) {
			nodes[2*i+2] = specNode{lo: mid, hi: nodes[i].hi, live: true}
		}
	}
	return nodes
}

// launch probes every live tree node concurrently on the worker budget.  A
// node at tree depth d holds the probe the sequential search would run d
// steps from now, so it uses sequential probe number probeN+d — siblings
// share the number (only one of them will be consumed).
func (s *searcher) launch(nodes []specNode) {
	idxs := make([]int, 0, len(nodes))
	for i := range nodes {
		if nodes[i].live {
			idxs = append(idxs, i)
		}
	}
	s.stats.Speculative += len(idxs)
	base := s.probeN
	par.Run(s.ctx, len(idxs), func(j int) {
		i := idxs[j]
		depth := uint64(bits.Len(uint(i+1)) - 1)
		rate := (nodes[i].lo + nodes[i].hi) / 2
		nodes[i].res, nodes[i].probe, nodes[i].err = s.probeAt(rate, base+depth)
	})
	// A cancelled ctx leaves unclaimed nodes without a result; surface
	// the cancellation where the walk consumes them.
	if err := s.ctx.Err(); err != nil {
		for _, i := range idxs {
			if nodes[i].res == nil && nodes[i].err == nil {
				nodes[i].err = err
			}
		}
	}
}
