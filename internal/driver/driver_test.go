package driver

import (
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/engine/flink"
	"repro/internal/engine/spark"
	"repro/internal/engine/storm"
	"repro/internal/generator"
	"repro/internal/workload"
)

func quickConfig(rate float64) Config {
	return Config{
		Seed:           42,
		Workers:        2,
		Rate:           generator.ConstantRate(rate),
		Query:          workload.Default(workload.Aggregation),
		RunFor:         60 * time.Second,
		EventsPerTuple: 200,
	}
}

func TestConfigValidate(t *testing.T) {
	if _, err := Run(flink.New(flink.Options{}), Config{}); err == nil {
		t.Fatal("missing rate must be rejected")
	}
	bad := quickConfig(1e5)
	bad.WarmupFraction = 1.5
	if _, err := Run(flink.New(flink.Options{}), bad); err == nil {
		t.Fatal("bad warmup fraction must be rejected")
	}
	d := Config{}.WithDefaults()
	if d.Workers != 2 || d.GeneratorInstances != 16 || d.WarmupFraction != 0.25 {
		t.Fatalf("defaults wrong: %+v", d)
	}
}

func TestRunProducesCompleteResult(t *testing.T) {
	res, err := Run(flink.New(flink.Options{}), quickConfig(0.4e6))
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != "flink" || res.Workers != 2 {
		t.Fatalf("identity: %s/%d", res.Engine, res.Workers)
	}
	if res.Outputs == 0 || res.EventLatency.Count() == 0 || res.ProcLatency.Count() == 0 {
		t.Fatal("latency measurements missing")
	}
	if res.Generated == 0 || res.Ingested == 0 {
		t.Fatal("throughput accounting missing")
	}
	if res.Ingested > res.Generated {
		t.Fatalf("ingested %d exceeds generated %d", res.Ingested, res.Generated)
	}
	if res.EventLatencySeries.Len() == 0 || res.ThroughputSeries.Len() == 0 || res.QueueDepthSeries.Len() == 0 {
		t.Fatal("series missing")
	}
	if len(res.CPU) != 2 || len(res.Net) != 2 {
		t.Fatalf("resource series: %d cpu, %d net", len(res.CPU), len(res.Net))
	}
	if !res.Verdict.Sustainable {
		t.Fatalf("0.4M ev/s must be sustainable on flink: %+v", res.Verdict)
	}
	// Offered rate accounting.
	if r := res.OfferedRate(); r < 0.39e6 || r > 0.41e6 {
		t.Fatalf("offered rate: %v", r)
	}
}

func TestRunDetectsOverload(t *testing.T) {
	res, err := Run(flink.New(flink.Options{}), quickConfig(1.6e6)) // >1.2M network bound
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict.Sustainable {
		t.Fatalf("1.6M ev/s cannot be sustainable: %+v", res.Verdict)
	}
	if res.Verdict.Reason == "" {
		t.Fatal("verdict must carry a reason")
	}
}

func TestEventLatencyDominatesProcLatency(t *testing.T) {
	// Event-time latency includes queueing; processing-time latency
	// cannot exceed it (Section IV).
	res, err := Run(spark.New(spark.Options{}), quickConfig(0.3e6))
	if err != nil {
		t.Fatal(err)
	}
	if res.ProcLatency.Mean() > res.EventLatency.Mean() {
		t.Fatalf("proc latency mean %v exceeds event latency mean %v",
			res.ProcLatency.Mean(), res.EventLatency.Mean())
	}
}

func TestRunIsDeterministic(t *testing.T) {
	run := func() (uint64, int64) {
		res, err := Run(storm.New(storm.Options{}), quickConfig(0.3e6))
		if err != nil {
			t.Fatal(err)
		}
		return res.EventLatency.Count(), res.Ingested
	}
	c1, i1 := run()
	c2, i2 := run()
	if c1 != c2 || i1 != i2 {
		t.Fatalf("runs with the same seed differ: (%d,%d) vs (%d,%d)", c1, i1, c2, i2)
	}
}

func TestQueueOverflowFailsRun(t *testing.T) {
	cfg := quickConfig(1.6e6)
	cfg.QueueCapPerInstance = 100_000 // tiny driver queues
	res, err := Run(flink.New(flink.Options{}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed {
		t.Fatal("queue overflow must fail the run")
	}
	if res.Verdict.Sustainable {
		t.Fatal("failed run judged sustainable")
	}
}

func TestWarmupExcludedFromHistograms(t *testing.T) {
	cfg := quickConfig(0.4e6)
	cfg.WarmupFraction = 0.5
	a, err := Run(flink.New(flink.Options{}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.WarmupFraction = 0.1
	b, err := Run(flink.New(flink.Options{}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.EventLatency.Count() >= b.EventLatency.Count() {
		t.Fatalf("longer warmup must record fewer samples: %d vs %d",
			a.EventLatency.Count(), b.EventLatency.Count())
	}
}

func TestFindSustainableFlinkHitsNetworkBound(t *testing.T) {
	rate, res, err := FindSustainable(flink.New(flink.Options{}), Config{
		Seed: 42, Workers: 4, Query: workload.Default(workload.Aggregation),
		EventsPerTuple: 400,
	}, SearchConfig{Lo: 0.1e6, Hi: 1.6e6, Resolution: 0.05, ProbeRunFor: 75 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || !res.Verdict.Sustainable {
		t.Fatal("search must return the last sustainable result")
	}
	// Table I: Flink is network-bound at ~1.2M ev/s.
	if rate < 1.05e6 || rate > 1.32e6 {
		t.Fatalf("flink sustainable rate %v not near the 1.2M network bound", rate)
	}
}

func TestFindSustainableRespectsFloor(t *testing.T) {
	// If even the floor rate fails (naive Storm join on 4 workers
	// stalls), the search reports 0 with the failing result.
	rate, res, err := FindSustainable(storm.New(storm.Options{}), Config{
		Seed: 42, Workers: 4, Query: workload.Default(workload.Join),
		EventsPerTuple: 400,
	}, SearchConfig{Lo: 0.05e6, Hi: 0.4e6, Resolution: 0.05, ProbeRunFor: 80 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if rate != 0 {
		t.Fatalf("stalling config should yield rate 0, got %v", rate)
	}
	if res == nil || !res.Failed {
		t.Fatal("floor probe's failing result must be returned")
	}
}

func TestFindSustainableEnforcesWindowCoverage(t *testing.T) {
	// With a 60s tumbling window, probes must be stretched so outputs
	// exist; the search must not report rate 0 for a healthy engine.
	q, err := workload.NewAggregation(time.Minute, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	rate, _, err := FindSustainable(flink.New(flink.Options{}), Config{
		Seed: 42, Workers: 2, Query: q, EventsPerTuple: 400,
	}, SearchConfig{Lo: 0.2e6, Hi: 1.6e6, Resolution: 0.1, ProbeRunFor: 75 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if rate == 0 {
		t.Fatal("healthy large-window deployment judged totally unsustainable")
	}
}

func TestStepScheduleRun(t *testing.T) {
	cfg := quickConfig(0)
	cfg.Rate = generator.PaperFluctuation(cfg.RunFor, 0.5e6, 0.2e6)
	res, err := Run(flink.New(flink.Options{}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Throughput series must show both plateaus.
	hi, lo := 0.0, 1e18
	for _, p := range res.ThroughputSeries.Points {
		if p.V > hi {
			hi = p.V
		}
		if p.V > 0 && p.V < lo {
			lo = p.V
		}
	}
	if hi < 0.45e6 || lo > 0.3e6 {
		t.Fatalf("fluctuating schedule not visible in throughput: hi=%v lo=%v", hi, lo)
	}
}

func TestRunWithBrokerInterposed(t *testing.T) {
	bcfg := broker.DefaultConfig()
	cfg := quickConfig(0.5e6)
	cfg.Broker = &bcfg
	cfg.WatermarkSlack = 200 * time.Millisecond
	res, err := Run(flink.New(flink.Options{}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs == 0 {
		t.Fatal("no outputs through the broker")
	}
	if !res.Verdict.Sustainable {
		t.Fatalf("0.5M ev/s is within the broker's capacity: %+v", res.Verdict)
	}
	// Above the broker's ~0.8M capacity the run must be unsustainable
	// even though Flink itself could do 1.2M.
	cfg2 := quickConfig(1.1e6)
	cfg2.Broker = &bcfg
	cfg2.WatermarkSlack = 200 * time.Millisecond
	res2, err := Run(flink.New(flink.Options{}), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Verdict.Sustainable {
		t.Fatal("broker bottleneck not detected at 1.1M ev/s")
	}
}

func TestRunDisorderAndSlack(t *testing.T) {
	cfg := quickConfig(0.4e6)
	cfg.DisorderProb = 0.3
	cfg.DisorderMax = time.Second
	res, err := Run(flink.New(flink.Options{}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LateDropped == 0 {
		t.Fatal("disorder without slack should lose window contributions")
	}
	cfg.WatermarkSlack = 1200 * time.Millisecond
	res2, err := Run(flink.New(flink.Options{}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.LateDropped >= res.LateDropped {
		t.Fatalf("slack should reduce late drops: %d vs %d", res2.LateDropped, res.LateDropped)
	}
}
