package driver

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/engine/flink"
	"repro/internal/workload"
)

func searchBase() Config {
	return Config{
		Seed: 42, Workers: 4, Query: workload.Default(workload.Aggregation),
		EventsPerTuple: 400,
	}
}

func searchCfg() SearchConfig {
	return SearchConfig{Lo: 0.1e6, Hi: 1.6e6, Resolution: 0.05, ProbeRunFor: 75 * time.Second}
}

// TestSpeculativeSearchBitIdenticalToSequential is the determinism pin of
// DESIGN-PERF.md §6: the speculative search must return a bit-identical
// rate and Result to the strictly sequential bisection, at GOMAXPROCS=1
// and on a parallel budget.
func TestSpeculativeSearchBitIdenticalToSequential(t *testing.T) {
	var seqStats SearchStats
	seq := searchCfg()
	seq.Speculate = 1
	seq.Stats = &seqStats
	seqRate, seqRes, err := FindSustainable(flink.New(flink.Options{}), searchBase(), seq)
	if err != nil {
		t.Fatal(err)
	}

	for _, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		var specStats SearchStats
		spec := searchCfg()
		spec.Speculate = 7
		spec.Stats = &specStats
		rate, res, err := FindSustainable(flink.New(flink.Options{}), searchBase(), spec)
		runtime.GOMAXPROCS(old)
		if err != nil {
			t.Fatal(err)
		}
		if rate != seqRate {
			t.Fatalf("GOMAXPROCS=%d: speculative rate %v != sequential %v", procs, rate, seqRate)
		}
		if !reflect.DeepEqual(res, seqRes) {
			t.Fatalf("GOMAXPROCS=%d: speculative Result differs from sequential", procs)
		}
		if specStats.Probes != seqStats.Probes {
			t.Fatalf("GOMAXPROCS=%d: consumed %d probes, sequential consumed %d",
				procs, specStats.Probes, seqStats.Probes)
		}
		if procs > 1 && specStats.Speculative <= specStats.Probes {
			t.Fatalf("GOMAXPROCS=%d: no speculation happened (%d launched, %d consumed)",
				procs, specStats.Speculative, specStats.Probes)
		}
		if procs == 1 && specStats.Speculative != specStats.Probes {
			t.Fatalf("GOMAXPROCS=1 must degenerate to sequential probing: %d launched, %d consumed",
				specStats.Speculative, specStats.Probes)
		}
	}
	if seqStats.FinalLo != seqRate || seqStats.FinalHi <= seqRate {
		t.Fatalf("final bracket accounting wrong: [%v, %v] around rate %v",
			seqStats.FinalLo, seqStats.FinalHi, seqRate)
	}
}

// TestWarmStartSearch checks a bracket recorded by a prior search makes the
// next one cheaper and lands within the search resolution of the cold rate.
func TestWarmStartSearch(t *testing.T) {
	var cold SearchStats
	cfg := searchCfg()
	cfg.Stats = &cold
	coldRate, _, err := FindSustainable(flink.New(flink.Options{}), searchBase(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	var warm SearchStats
	wcfg := searchCfg()
	wcfg.WarmLo, wcfg.WarmHi = cold.FinalLo, cold.FinalHi
	wcfg.Stats = &warm
	warmRate, res, err := FindSustainable(flink.New(flink.Options{}), searchBase(), wcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmStart {
		t.Fatal("warm bracket was not used")
	}
	if res == nil || !res.Verdict.Sustainable {
		t.Fatal("warm search must return a sustainable Result")
	}
	if warm.Probes >= cold.Probes {
		t.Fatalf("warm start did not save probes: %d vs cold %d", warm.Probes, cold.Probes)
	}
	if rel := (warmRate - coldRate) / coldRate; rel > 2*wcfg.Resolution || rel < -2*wcfg.Resolution {
		t.Fatalf("warm rate %v strays from cold rate %v by %.1f%%", warmRate, coldRate, 100*rel)
	}
}

// TestWarmStartFallsBackCold checks a stale warm bracket (floor no longer
// sustainable) falls back to the cold search and returns exactly its
// result.
func TestWarmStartFallsBackCold(t *testing.T) {
	coldRate, coldRes, err := FindSustainable(flink.New(flink.Options{}), searchBase(), searchCfg())
	if err != nil {
		t.Fatal(err)
	}

	var stats SearchStats
	wcfg := searchCfg()
	// Flink is network-bound ~1.2M ev/s: a 1.4–1.6M bracket's floor fails.
	wcfg.WarmLo, wcfg.WarmHi = 1.4e6, 1.6e6
	wcfg.Stats = &stats
	rate, res, err := FindSustainable(flink.New(flink.Options{}), searchBase(), wcfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.WarmStart {
		t.Fatal("stale warm bracket must not be reported as used")
	}
	if rate != coldRate || !reflect.DeepEqual(res, coldRes) {
		t.Fatalf("fallback result differs from cold search: %v vs %v", rate, coldRate)
	}

	// Upward drift: a warm bracket entirely below the true rate has every
	// probe judged sustainable, so its ceiling is never invalidated.  The
	// search must not cap the answer at the bracket ceiling — it falls
	// back cold and finds the real rate.
	var low SearchStats
	lcfg := searchCfg()
	lcfg.WarmLo, lcfg.WarmHi = 0.3e6, 0.4e6
	lcfg.Stats = &low
	rate, res, err = FindSustainable(flink.New(flink.Options{}), searchBase(), lcfg)
	if err != nil {
		t.Fatal(err)
	}
	if low.WarmStart {
		t.Fatal("uninvalidated warm ceiling must not be reported as used")
	}
	if rate != coldRate || !reflect.DeepEqual(res, coldRes) {
		t.Fatalf("upward-drift fallback differs from cold search: %v vs %v", rate, coldRate)
	}
}

// TestWarmBracketValidation pins the widen/clip rules.
func TestWarmBracketValidation(t *testing.T) {
	base := SearchConfig{Lo: 0.1e6, Hi: 1.6e6, Resolution: 0.05}
	if _, _, ok := warmBracket(base); ok {
		t.Fatal("zero warm bracket must be ignored")
	}
	bad := base
	bad.WarmLo, bad.WarmHi = 0.5e6, 0.4e6 // inverted
	if _, _, ok := warmBracket(bad); ok {
		t.Fatal("inverted warm bracket must be ignored")
	}
	w := base
	w.WarmLo, w.WarmHi = 0.4e6, 0.5e6
	lo, hi, ok := warmBracket(w)
	if !ok || lo >= w.WarmLo || hi <= w.WarmHi {
		t.Fatalf("warm bracket not widened: [%v, %v]", lo, hi)
	}
	clip := base
	clip.WarmLo, clip.WarmHi = 0.05e6, 2e6 // beyond [Lo, Hi]
	lo, hi, ok = warmBracket(clip)
	if !ok || lo != base.Lo || hi != base.Hi {
		t.Fatalf("warm bracket not clipped to [Lo, Hi]: [%v, %v]", lo, hi)
	}
}

// BenchmarkFindSustainableQuick is the headline microbenchmark of one
// quick-scale sustainable-throughput search (the unit Table I runs nine
// of).  Speculation follows the spare worker budget, so single-core runs
// measure the sequential path.
func BenchmarkFindSustainableQuick(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := FindSustainable(flink.New(flink.Options{}), searchBase(), searchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}
