#!/bin/sh
# Chaos smoke test for the fault-hardened control plane: run the
# crash-recovery scenario (which itself injects engine faults) on a small
# deployment, then inject real process faults into that deployment — the
# external agent is SIGKILLed and restarted mid-run, the coordinator is
# SIGKILLed and restarted over the same data directory, and finally an agent
# is SIGSTOPped past the lease TTL and SIGCONTed (a frozen-but-alive
# straggler whose lease expires, re-queues to a second agent, and whose
# post-thaw Complete arrives stale).  The restarted coordinator must resume
# from its manifests + write-ahead journal without losing finished cells,
# the stale Complete must be rejected without disturbing the re-run, and the
# final artifact must still be byte-identical to a direct sdpsbench run of
# the same scenario and seed.
#
# Usage: scripts/chaos-smoke.sh [port]   (invoked by `make chaos`)
set -eu

PORT="${1:-8374}"
COORD="http://127.0.0.1:${PORT}"
SCENARIO="examples/scenarios/crash-recovery.json"
TMP="$(mktemp -d)"
SDPSD_PID=""
AGENT_PID=""
AGENT2_PID=""

cleanup() {
    # SIGCONT first: a SIGTERM queued against a stopped process would
    # never be delivered.
    [ -n "$AGENT_PID" ] && kill -CONT "$AGENT_PID" 2>/dev/null || true
    [ -n "$AGENT_PID" ] && kill "$AGENT_PID" 2>/dev/null || true
    [ -n "$AGENT2_PID" ] && kill "$AGENT2_PID" 2>/dev/null || true
    [ -n "$SDPSD_PID" ] && kill "$SDPSD_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "chaos: building binaries"
go build -o "$TMP/sdpsd" ./cmd/sdpsd
go build -o "$TMP/sdpsctl" ./cmd/sdpsctl
go build -o "$TMP/sdpsbench" ./cmd/sdpsbench
go build -o "$TMP/sdpsreport" ./cmd/sdpsreport

start_sdpsd() {
    # No in-process agents: the single external agent executes cells
    # sequentially, which keeps the run slow enough to be killed mid-way.
    # A short lease TTL so a killed agent's cells re-queue within the test.
    "$TMP/sdpsd" -listen "127.0.0.1:${PORT}" -data "$TMP/data" -agents 0 \
        -lease-ttl 2s 2>>"$TMP/sdpsd.log" &
    SDPSD_PID=$!
}

wait_up() {
    i=0
    until "$TMP/sdpsctl" status --coord "$COORD" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "chaos: sdpsd did not come up" >&2
            cat "$TMP/sdpsd.log" >&2 || true
            exit 1
        fi
        sleep 0.1
    done
}

start_agent() {
    # An external agent over HTTP: its death exercises lease expiry, its
    # restart exercises registration retry and error backoff.
    "$TMP/sdpsctl" agent --coord "$COORD" --name chaos --poll 20ms \
        2>>"$TMP/agent.log" &
    AGENT_PID=$!
}

# done_cells prints the run's completed-cell count ("D" of "D/T cells");
# total_cells prints the "T".
done_cells() {
    "$TMP/sdpsctl" status --coord "$COORD" | awk -v id="$RUN_ID" \
        '$1 == id { split($(NF-1), a, "/"); print a[1] }'
}
total_cells() {
    "$TMP/sdpsctl" status --coord "$COORD" | awk -v id="$RUN_ID" \
        '$1 == id { split($(NF-1), a, "/"); print a[2] }'
}

# wait_done_at_least N: poll until at least N cells are done (or give up
# after ~5s — on a fast machine the run may already have finished, which
# still exercises the resume path, just less of it).
wait_done_at_least() {
    want="$1"
    i=0
    while [ "$i" -lt 100 ]; do
        d="$(done_cells || echo 0)"
        [ -n "$d" ] || d=0
        if [ "$d" -ge "$want" ]; then
            echo "$d"
            return
        fi
        i=$((i + 1))
        sleep 0.05
    done
    echo "$d"
}

echo "chaos: starting sdpsd and 1 external agent"
start_sdpsd
wait_up
start_agent

echo "chaos: submitting scenario $SCENARIO (quick, seed 42)"
RUN_ID="$("$TMP/sdpsctl" submit --coord "$COORD" --scenario "$SCENARIO" --scale quick --seed 42 -q)"

# Fault 1: SIGKILL the agent after its first completed cell; its successor
# must pick the leased cell back up once the lease TTL expires.
D="$(wait_done_at_least 1)"
echo "chaos: killing the external agent with $D cell(s) done"
kill -9 "$AGENT_PID" 2>/dev/null || true
wait "$AGENT_PID" 2>/dev/null || true
AGENT_PID=""
start_agent

# Fault 2: SIGKILL the coordinator once more progress lands, so the restart
# happens mid-run and must resume from manifests + journal.
DONE_BEFORE="$(wait_done_at_least $((D + 1)))"
echo "chaos: killing the coordinator with $DONE_BEFORE cell(s) done"
kill -9 "$SDPSD_PID" 2>/dev/null || true
wait "$SDPSD_PID" 2>/dev/null || true
SDPSD_PID=""

echo "chaos: restarting the coordinator over the same data directory"
start_sdpsd
wait_up

DONE_AFTER="$(done_cells || echo 0)"
[ -n "$DONE_AFTER" ] || DONE_AFTER=0
if [ "$DONE_AFTER" -lt "$DONE_BEFORE" ]; then
    echo "chaos: FAIL — restart lost finished cells ($DONE_AFTER < $DONE_BEFORE)" >&2
    exit 1
fi
echo "chaos: resumed with $DONE_AFTER cell(s) done (had $DONE_BEFORE before the kill)"

# Fault 3: SIGSTOP the agent past the lease TTL.  Unlike SIGKILL, the frozen
# process stays alive and keeps its lease ID, so on SIGCONT it finishes the
# cell it was working on and Completes a lease the coordinator has already
# expired and handed to another agent — the stale Complete must be rejected
# (409) without disturbing the re-run.  While it is frozen, a second agent
# proves the expired lease re-queued by making progress.
TOTAL="$(total_cells || echo 0)"
[ -n "$TOTAL" ] || TOTAL=0
DONE_FROZEN="$(done_cells || echo 0)"
[ -n "$DONE_FROZEN" ] || DONE_FROZEN=0
echo "chaos: freezing the agent (SIGSTOP) with $DONE_FROZEN/$TOTAL cell(s) done"
kill -STOP "$AGENT_PID"
# Sleep past the 2s lease TTL so anything the frozen agent held expires.
sleep 3

echo "chaos: starting a second agent against the frozen straggler's work"
"$TMP/sdpsctl" agent --coord "$COORD" --name chaos2 --poll 20ms \
    2>>"$TMP/agent2.log" &
AGENT2_PID=$!

if [ "$DONE_FROZEN" -lt "$TOTAL" ]; then
    DONE_THAW="$(wait_done_at_least $((DONE_FROZEN + 1)))"
    [ -n "$DONE_THAW" ] || DONE_THAW=0
    if [ "$DONE_THAW" -le "$DONE_FROZEN" ]; then
        echo "chaos: FAIL — no progress while the agent was frozen (expired lease not re-queued?)" >&2
        exit 1
    fi
    echo "chaos: second agent advanced the run to $DONE_THAW cell(s) past the expired lease"
fi

echo "chaos: thawing the frozen agent (SIGCONT); its pending Complete is now stale"
kill -CONT "$AGENT_PID"

echo "chaos: watching $RUN_ID to completion"
"$TMP/sdpsctl" watch "$RUN_ID" --coord "$COORD"
"$TMP/sdpsctl" fetch "$RUN_ID" --coord "$COORD" -o "$TMP/distributed.json"

echo "chaos: running the scenario directly for the reference artifact"
"$TMP/sdpsbench" -scenario "$SCENARIO" -scale quick -seed 42 -json > "$TMP/direct.json"

if ! cmp -s "$TMP/distributed.json" "$TMP/direct.json"; then
    echo "chaos: FAIL — artifact differs from the direct run after chaos" >&2
    diff "$TMP/distributed.json" "$TMP/direct.json" | head -20 >&2
    exit 1
fi
echo "chaos: OK — artifact byte-identical to sdpsbench through agent kill + coordinator restart + frozen straggler ($(wc -c < "$TMP/direct.json") bytes)"

# Final pass: the recovered run must be report-complete — sdpsreport -from
# re-assembles it offline from the post-chaos store (manifest + objects)
# without executing anything.
echo "chaos: rendering a report from the recovered run's store"
if ! "$TMP/sdpsreport" -from "$TMP/data/$RUN_ID" -date 2026-01-01 > "$TMP/report.md"; then
    echo "chaos: FAIL — sdpsreport -from could not re-assemble the recovered run" >&2
    exit 1
fi
if ! grep -q "crash-recovery" "$TMP/report.md"; then
    echo "chaos: FAIL — report from recovered run lacks the scenario section" >&2
    head -40 "$TMP/report.md" >&2
    exit 1
fi
echo "chaos: OK — sdpsreport -from rendered the recovered run ($(wc -c < "$TMP/report.md") bytes)"

# Elastic-rescale phase: the worker set changes mid-run (4→6 at 30s) while a
# correlated domain outage fences the new rack — the scenario whose every
# knob this harness exists to shake.  It runs distributed on the surviving
# deployment (post-chaos coordinator, both agents) and must still be
# byte-identical to a direct sdpsbench run.
RESCALE_SCENARIO="examples/scenarios/elastic-rescale.json"
echo "chaos: submitting scenario $RESCALE_SCENARIO (quick, seed 42) on the post-chaos deployment"
RUN_ID="$("$TMP/sdpsctl" submit --coord "$COORD" --scenario "$RESCALE_SCENARIO" --scale quick --seed 42 -q)"
"$TMP/sdpsctl" watch "$RUN_ID" --coord "$COORD"
"$TMP/sdpsctl" fetch "$RUN_ID" --coord "$COORD" -o "$TMP/rescale-distributed.json"

echo "chaos: running the rescale scenario directly for the reference artifact"
"$TMP/sdpsbench" -scenario "$RESCALE_SCENARIO" -scale quick -seed 42 -json > "$TMP/rescale-direct.json"

if ! cmp -s "$TMP/rescale-distributed.json" "$TMP/rescale-direct.json"; then
    echo "chaos: FAIL — elastic-rescale artifact differs from the direct run" >&2
    diff "$TMP/rescale-distributed.json" "$TMP/rescale-direct.json" | head -20 >&2
    exit 1
fi
if ! grep -q "rescale_cost_s" "$TMP/rescale-direct.json"; then
    echo "chaos: FAIL — elastic-rescale artifact lacks the per-rescale transition metrics" >&2
    exit 1
fi
echo "chaos: OK — elastic-rescale artifact byte-identical distributed vs direct ($(wc -c < "$TMP/rescale-direct.json") bytes)"
