#!/bin/sh
# Chaos smoke test for the fault-hardened control plane: run the
# crash-recovery scenario (which itself injects engine faults) on a small
# deployment, then inject real process faults into that deployment — the
# external agent is SIGKILLed and restarted mid-run, and the coordinator is
# SIGKILLed and restarted over the same data directory.  The restarted
# coordinator must resume from its manifests + write-ahead journal without
# losing finished cells, and the final artifact must still be byte-identical
# to a direct sdpsbench run of the same scenario and seed.
#
# Usage: scripts/chaos-smoke.sh [port]   (invoked by `make chaos`)
set -eu

PORT="${1:-8374}"
COORD="http://127.0.0.1:${PORT}"
SCENARIO="examples/scenarios/crash-recovery.json"
TMP="$(mktemp -d)"
SDPSD_PID=""
AGENT_PID=""

cleanup() {
    [ -n "$AGENT_PID" ] && kill "$AGENT_PID" 2>/dev/null || true
    [ -n "$SDPSD_PID" ] && kill "$SDPSD_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "chaos: building binaries"
go build -o "$TMP/sdpsd" ./cmd/sdpsd
go build -o "$TMP/sdpsctl" ./cmd/sdpsctl
go build -o "$TMP/sdpsbench" ./cmd/sdpsbench
go build -o "$TMP/sdpsreport" ./cmd/sdpsreport

start_sdpsd() {
    # No in-process agents: the single external agent executes cells
    # sequentially, which keeps the run slow enough to be killed mid-way.
    # A short lease TTL so a killed agent's cells re-queue within the test.
    "$TMP/sdpsd" -listen "127.0.0.1:${PORT}" -data "$TMP/data" -agents 0 \
        -lease-ttl 2s 2>>"$TMP/sdpsd.log" &
    SDPSD_PID=$!
}

wait_up() {
    i=0
    until "$TMP/sdpsctl" status --coord "$COORD" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "chaos: sdpsd did not come up" >&2
            cat "$TMP/sdpsd.log" >&2 || true
            exit 1
        fi
        sleep 0.1
    done
}

start_agent() {
    # An external agent over HTTP: its death exercises lease expiry, its
    # restart exercises registration retry and error backoff.
    "$TMP/sdpsctl" agent --coord "$COORD" --name chaos --poll 20ms \
        2>>"$TMP/agent.log" &
    AGENT_PID=$!
}

# done_cells prints the run's completed-cell count ("D" of "D/T cells").
done_cells() {
    "$TMP/sdpsctl" status --coord "$COORD" | awk -v id="$RUN_ID" \
        '$1 == id { split($(NF-1), a, "/"); print a[1] }'
}

# wait_done_at_least N: poll until at least N cells are done (or give up
# after ~5s — on a fast machine the run may already have finished, which
# still exercises the resume path, just less of it).
wait_done_at_least() {
    want="$1"
    i=0
    while [ "$i" -lt 100 ]; do
        d="$(done_cells || echo 0)"
        [ -n "$d" ] || d=0
        if [ "$d" -ge "$want" ]; then
            echo "$d"
            return
        fi
        i=$((i + 1))
        sleep 0.05
    done
    echo "$d"
}

echo "chaos: starting sdpsd and 1 external agent"
start_sdpsd
wait_up
start_agent

echo "chaos: submitting scenario $SCENARIO (quick, seed 42)"
RUN_ID="$("$TMP/sdpsctl" submit --coord "$COORD" --scenario "$SCENARIO" --scale quick --seed 42 -q)"

# Fault 1: SIGKILL the agent after its first completed cell; its successor
# must pick the leased cell back up once the lease TTL expires.
D="$(wait_done_at_least 1)"
echo "chaos: killing the external agent with $D cell(s) done"
kill -9 "$AGENT_PID" 2>/dev/null || true
wait "$AGENT_PID" 2>/dev/null || true
AGENT_PID=""
start_agent

# Fault 2: SIGKILL the coordinator once more progress lands, so the restart
# happens mid-run and must resume from manifests + journal.
DONE_BEFORE="$(wait_done_at_least $((D + 1)))"
echo "chaos: killing the coordinator with $DONE_BEFORE cell(s) done"
kill -9 "$SDPSD_PID" 2>/dev/null || true
wait "$SDPSD_PID" 2>/dev/null || true
SDPSD_PID=""

echo "chaos: restarting the coordinator over the same data directory"
start_sdpsd
wait_up

DONE_AFTER="$(done_cells || echo 0)"
[ -n "$DONE_AFTER" ] || DONE_AFTER=0
if [ "$DONE_AFTER" -lt "$DONE_BEFORE" ]; then
    echo "chaos: FAIL — restart lost finished cells ($DONE_AFTER < $DONE_BEFORE)" >&2
    exit 1
fi
echo "chaos: resumed with $DONE_AFTER cell(s) done (had $DONE_BEFORE before the kill)"

echo "chaos: watching $RUN_ID to completion"
"$TMP/sdpsctl" watch "$RUN_ID" --coord "$COORD"
"$TMP/sdpsctl" fetch "$RUN_ID" --coord "$COORD" -o "$TMP/distributed.json"

echo "chaos: running the scenario directly for the reference artifact"
"$TMP/sdpsbench" -scenario "$SCENARIO" -scale quick -seed 42 -json > "$TMP/direct.json"

if ! cmp -s "$TMP/distributed.json" "$TMP/direct.json"; then
    echo "chaos: FAIL — artifact differs from the direct run after chaos" >&2
    diff "$TMP/distributed.json" "$TMP/direct.json" | head -20 >&2
    exit 1
fi
echo "chaos: OK — artifact byte-identical to sdpsbench through agent kill + coordinator restart ($(wc -c < "$TMP/direct.json") bytes)"

# Final pass: the recovered run must be report-complete — sdpsreport -from
# re-assembles it offline from the post-chaos store (manifest + objects)
# without executing anything.
echo "chaos: rendering a report from the recovered run's store"
if ! "$TMP/sdpsreport" -from "$TMP/data/$RUN_ID" -date 2026-01-01 > "$TMP/report.md"; then
    echo "chaos: FAIL — sdpsreport -from could not re-assemble the recovered run" >&2
    exit 1
fi
if ! grep -q "crash-recovery" "$TMP/report.md"; then
    echo "chaos: FAIL — report from recovered run lacks the scenario section" >&2
    head -40 "$TMP/report.md" >&2
    exit 1
fi
echo "chaos: OK — sdpsreport -from rendered the recovered run ($(wc -c < "$TMP/report.md") bytes)"
