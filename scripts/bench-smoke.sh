#!/usr/bin/env sh
# bench-smoke: the CI allocation-regression gate.
#
# Runs the pinned zero-allocation hot-path microbenchmarks once with
# -benchmem and fails if any of them reports a non-zero allocs/op.  These
# benchmarks are the steady-state contracts of DESIGN-PERF.md: the queue
# ring, the generator tick, the window aggregation slab recycling, the
# kernel's value-based scheduler (§7), the flat keyed-state tables and
# the keyed window fire path (§8) must never allocate per event.
set -eu
cd "$(dirname "$0")/.."

out=$(mktemp)
trap 'rm -f "$out"' EXIT

if ! go test -run=NONE \
	-bench='BenchmarkQueuePushPop|BenchmarkGeneratorTick|BenchmarkWindowAggregate|BenchmarkWindowKeyedFire|BenchmarkKernelSchedule|BenchmarkFlatTablePutGet|BenchmarkBatchColumnAppend' \
	-benchtime=1x -benchmem \
	./internal/queue/ ./internal/generator/ ./internal/window/ ./internal/sim/ ./internal/flat/ ./internal/tuple/ >"$out" 2>&1; then
	cat "$out"
	exit 1
fi
cat "$out"

awk '
/^Benchmark/ {
	for (i = 1; i <= NF; i++)
		if ($i == "allocs/op" && $(i-1) + 0 > 0) {
			bad = bad "\n  " $1 ": " $(i-1) " allocs/op"
		}
}
END {
	if (bad != "") {
		printf "bench-smoke: allocation regression in pinned 0-allocs/op benchmarks:%s\n", bad
		exit 1
	}
	print "bench-smoke: all pinned benchmarks report 0 allocs/op"
}' "$out"
