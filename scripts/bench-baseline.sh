#!/usr/bin/env sh
# bench-baseline: record the perf trajectory.
#
# Runs the headline benchmarks — the zero-allocation microbenchmark set,
# one sustainable-throughput search, and the Table I regeneration (the
# repo's end-to-end wall-clock figure) — and writes a BENCH_<date>.json
# snapshot with every reported metric (ns/op, B/op, allocs/op and the
# headline custom metrics).  Committing the snapshot after a perf PR is
# what makes regressions diffable: `make bench-json`, then compare against
# the previous BENCH_*.json.
#
# BENCH_DATE overrides the date stamp (for reproducible filenames in CI);
# BENCH_OUT overrides the output path entirely.  The snapshot records the
# producing git commit and a dirty flag, so `sdpsreport compare` can say
# exactly which trees are being compared.
set -eu
cd "$(dirname "$0")/.."

date_tag=${BENCH_DATE:-$(date +%F)}
out=${BENCH_OUT:-BENCH_${date_tag}.json}

# Provenance: which tree produced this snapshot.  A dirty flag marks
# baselines that cannot be reproduced from any commit.
commit=$(git rev-parse HEAD 2>/dev/null || echo "")
dirty=false
if [ -n "$commit" ] && ! git diff --quiet HEAD 2>/dev/null; then
	dirty=true
fi
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

run() {
	echo "bench-baseline: $*" >&2
	go test -run=NONE "$@" >>"$raw" 2>&1 || { cat "$raw"; exit 1; }
}

: >"$raw"
run -bench='BenchmarkKernelSchedule' -benchmem ./internal/sim/
run -bench='BenchmarkBatchColumnAppend' -benchmem ./internal/tuple/
run -bench='BenchmarkQueuePushPop|BenchmarkQueueBatchTransfer' -benchmem ./internal/queue/
run -bench='BenchmarkGeneratorTick' -benchmem ./internal/generator/
run -bench='BenchmarkWindowAggregate|BenchmarkWindowKeyedFire' -benchmem ./internal/window/
run -bench='BenchmarkFlatTablePutGet' -benchmem ./internal/flat/
run -bench='BenchmarkFindSustainableQuick' -benchtime=1x -benchmem ./internal/driver/
run -bench='BenchmarkTable1SustainableAggregation' -benchtime=1x -benchmem .

awk -v date="$date_tag" -v commit="$commit" -v dirty="$dirty" '
BEGIN { n = 0; gomaxprocs = 1 }
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
	name = $1
	if (match(name, /-[0-9]+$/))
		gomaxprocs = substr(name, RSTART + 1)
	sub(/-[0-9]+$/, "", name)
	sub(/^Benchmark/, "", name)
	iters = $2
	m = ""
	for (i = 3; i < NF; i += 2) {
		gsub(/"/, "", $(i+1))
		m = m sprintf("%s\"%s\": %s", (m == "" ? "" : ", "), $(i+1), $i)
	}
	benches[n++] = sprintf("{\"name\": \"%s\", \"iters\": %s, \"metrics\": {%s}}", name, iters, m)
}
END {
	printf "{\n"
	printf "  \"date\": \"%s\",\n", date
	if (commit != "") {
		printf "  \"commit\": \"%s\",\n", commit
		printf "  \"dirty\": %s,\n", dirty
	}
	printf "  \"goos\": \"%s\",\n", goos
	printf "  \"goarch\": \"%s\",\n", goarch
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"gomaxprocs\": %s,\n", gomaxprocs
	printf "  \"benchmarks\": [\n"
	for (i = 0; i < n; i++)
		printf "    %s%s\n", benches[i], (i < n-1 ? "," : "")
	printf "  ]\n"
	printf "}\n"
}' "$raw" >"$out"

echo "bench-baseline: wrote $out" >&2
