#!/bin/sh
# Smoke test for the distributed experiment controller: boot sdpsd with two
# in-process agents, submit table1 and a declarative scenario spec at quick
# scale through sdpsctl, and require each fetched artifact to be
# byte-identical to the corresponding direct sdpsbench run.
#
# Usage: scripts/smoke-ctl.sh [port]   (invoked by `make smoke`)
set -eu

PORT="${1:-8373}"
COORD="http://127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
SDPSD_PID=""

cleanup() {
    [ -n "$SDPSD_PID" ] && kill "$SDPSD_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "smoke: building binaries"
go build -o "$TMP/sdpsd" ./cmd/sdpsd
go build -o "$TMP/sdpsctl" ./cmd/sdpsctl
go build -o "$TMP/sdpsbench" ./cmd/sdpsbench

echo "smoke: starting sdpsd with 2 in-process agents on $COORD"
"$TMP/sdpsd" -listen "127.0.0.1:${PORT}" -data "$TMP/data" -agents 2 -lease-ttl 5s &
SDPSD_PID=$!

# Wait for the control API to come up.
i=0
until "$TMP/sdpsctl" status --coord "$COORD" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "smoke: sdpsd did not come up" >&2
        exit 1
    fi
    sleep 0.1
done

echo "smoke: submitting table1 (quick, seed 42)"
RUN_ID="$("$TMP/sdpsctl" submit table1 --coord "$COORD" --scale quick --seed 42 -q)"
echo "smoke: watching $RUN_ID"
"$TMP/sdpsctl" watch "$RUN_ID" --coord "$COORD"
"$TMP/sdpsctl" fetch "$RUN_ID" --coord "$COORD" -o "$TMP/distributed.json"

echo "smoke: running sdpsbench directly for the reference artifact"
"$TMP/sdpsbench" -exp table1 -scale quick -seed 42 -json > "$TMP/direct.json"

if ! cmp -s "$TMP/distributed.json" "$TMP/direct.json"; then
    echo "smoke: FAIL — distributed artifact differs from direct run" >&2
    diff "$TMP/distributed.json" "$TMP/direct.json" | head -20 >&2
    exit 1
fi
echo "smoke: OK — coordinator artifact is byte-identical to sdpsbench ($(wc -c < "$TMP/direct.json") bytes)"

SCENARIO="examples/scenarios/backpressure-recovery.json"
echo "smoke: submitting scenario $SCENARIO (quick, seed 42)"
RUN2_ID="$("$TMP/sdpsctl" submit --coord "$COORD" --scenario "$SCENARIO" --scale quick --seed 42 -q)"
echo "smoke: watching $RUN2_ID"
"$TMP/sdpsctl" watch "$RUN2_ID" --coord "$COORD"
"$TMP/sdpsctl" fetch "$RUN2_ID" --coord "$COORD" -o "$TMP/scenario-distributed.json"

echo "smoke: running the scenario directly for the reference artifact"
"$TMP/sdpsbench" -scenario "$SCENARIO" -scale quick -seed 42 -json > "$TMP/scenario-direct.json"

if ! cmp -s "$TMP/scenario-distributed.json" "$TMP/scenario-direct.json"; then
    echo "smoke: FAIL — distributed scenario artifact differs from direct run" >&2
    diff "$TMP/scenario-distributed.json" "$TMP/scenario-direct.json" | head -20 >&2
    exit 1
fi
echo "smoke: OK — scenario artifact is byte-identical to sdpsbench -scenario ($(wc -c < "$TMP/scenario-direct.json") bytes)"
