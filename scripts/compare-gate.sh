#!/usr/bin/env sh
# compare-gate: the perf-regression gate `make ci` runs.
#
# Takes a fresh micro-benchmark snapshot (scripts/bench-baseline.sh into a
# temp file) and compares it against the newest committed BENCH_*.json via
# `sdpsreport compare --gate scripts/gate-thresholds.json`.  The gate fails
# (exit 1) when any metric moves past its tolerance — allocs/op is tight
# (the zero-alloc hot paths must stay zero-alloc), ns/op is loose enough
# to absorb shared-CI timing noise but catches order-of-magnitude
# regressions, and the headline *_ev/s throughput metrics may not drop.
# Benchmark renames/additions fail structurally ("missing": "fail") until
# a new baseline is committed alongside them.
#
# GATE_BASELINE overrides the baseline file; the full comparison table is
# printed either way.
set -eu
cd "$(dirname "$0")/.."

# Newest committed baseline by its embedded "date" stamp — filename order
# is wrong for suffixed stamps ("...-pr5" sorts before ".json").
newest_baseline() {
	for f in BENCH_*.json; do
		[ -f "$f" ] || continue
		printf '%s\t%s\n' "$(sed -n 's/.*"date": *"\([^"]*\)".*/\1/p' "$f" | head -1)" "$f"
	done | sort | tail -1 | cut -f2
}

baseline=${GATE_BASELINE:-$(newest_baseline)}
if [ -z "$baseline" ] || [ ! -f "$baseline" ]; then
	echo "compare-gate: no committed BENCH_*.json baseline found" >&2
	exit 1
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "compare-gate: snapshotting benchmarks..." >&2
BENCH_OUT=$tmp/bench-now.json scripts/bench-baseline.sh

echo "compare-gate: gating against $baseline" >&2
go run ./cmd/sdpsreport compare -gate scripts/gate-thresholds.json \
	"$baseline" "$tmp/bench-now.json"
