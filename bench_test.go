// Package repro's top-level benchmarks regenerate every table and figure
// of "Benchmarking Distributed Stream Data Processing Systems" (Karimov et
// al., ICDE 2018).  One testing.B target per artefact; each prints the
// paper-shaped rows/series through internal/report, so
//
//	go test -bench=. -benchmem
//
// re-derives the whole evaluation.  Absolute numbers come from the
// calibrated simulation substrate (see DESIGN.md §2); the shapes — who
// wins, by what factor, where the crossovers fall — are asserted in
// internal/core's tests and recorded against the paper in EXPERIMENTS.md.
//
// Benchmarks run at Quick scale by default so the full suite stays in the
// minutes range; set SDPS_BENCH_SCALE=full for evaluation fidelity.
package main

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
	// Registers the grid experiments declared as scenario specs.
	_ "repro/internal/scenario"
)

func benchScale() core.Scale {
	if os.Getenv("SDPS_BENCH_SCALE") == "full" {
		return core.Full
	}
	return core.Quick
}

// runExperiment executes the registered experiment once per benchmark
// iteration and reports headline metrics through the benchmark framework.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := core.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	var out *core.Outcome
	for i := 0; i < b.N; i++ {
		// Vary the seed across iterations so -count>1 samples episode
		// schedules instead of replaying one bit-for-bit.
		out, err = exp.Run(core.Options{Seed: 42 + uint64(i), Scale: benchScale()})
		if err != nil {
			b.Fatal(err)
		}
	}
	if out != nil {
		fmt.Printf("\n%s\n", out.Text)
		reportHeadlines(b, id, out)
	}
}

// reportHeadlines attaches a few headline metrics to the benchmark output
// so regressions show up in benchstat diffs.
func reportHeadlines(b *testing.B, id string, out *core.Outcome) {
	switch id {
	case "table1":
		b.ReportMetric(out.Metrics["flink/8"], "flink8_ev/s")
		b.ReportMetric(out.Metrics["storm/8"], "storm8_ev/s")
		b.ReportMetric(out.Metrics["spark/8"], "spark8_ev/s")
	case "table2":
		b.ReportMetric(out.Metrics["flink/2/100/avg"], "flink2_avg_s")
		b.ReportMetric(out.Metrics["spark/2/100/avg"], "spark2_avg_s")
	case "table3":
		b.ReportMetric(out.Metrics["flink/8"], "flink8_ev/s")
		b.ReportMetric(out.Metrics["spark/8"], "spark8_ev/s")
	case "table4":
		b.ReportMetric(out.Metrics["flink/2/100/avg"], "flink2_avg_s")
		b.ReportMetric(out.Metrics["spark/2/100/avg"], "spark2_avg_s")
	case "fig7":
		b.ReportMetric(out.Metrics["event_slope"], "event_slope_s/s")
		b.ReportMetric(out.Metrics["proc_slope"], "proc_slope_s/s")
	case "fig9":
		b.ReportMetric(out.Metrics["flink/cv"], "flink_cv")
		b.ReportMetric(out.Metrics["storm/cv"], "storm_cv")
		b.ReportMetric(out.Metrics["spark/cv"], "spark_cv")
	case "fig10":
		b.ReportMetric(out.Metrics["flink/cpu_mean"], "flink_cpu_pct")
		b.ReportMetric(out.Metrics["spark/cpu_mean"], "spark_cpu_pct")
	case "exp4":
		b.ReportMetric(out.Metrics["flink/8"], "flink8_skew_ev/s")
		b.ReportMetric(out.Metrics["spark/4"], "spark4_skew_ev/s")
	}
}

// BenchmarkTable1SustainableAggregation regenerates Table I: the maximum
// sustainable throughput of the windowed aggregation for every engine and
// cluster size, found by bisection per Definition 5.
func BenchmarkTable1SustainableAggregation(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2AggregationLatency regenerates Table II: event-time
// latency statistics (avg/min/max/quantiles) at the Table I workloads and
// at 90% of them.
func BenchmarkTable2AggregationLatency(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3SustainableJoin regenerates Table III: sustainable
// throughput of the windowed join for Spark and Flink, plus the Storm
// naive-join aside (0.14M ev/s on 2 nodes, stall on 4).
func BenchmarkTable3SustainableJoin(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable4JoinLatency regenerates Table IV: join latency statistics
// at the Table III workloads and at 90% of them.
func BenchmarkTable4JoinLatency(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkFig4AggregationLatencySeries regenerates Figure 4's 18 panels:
// aggregation latency over time per engine × cluster × load.
func BenchmarkFig4AggregationLatencySeries(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5JoinLatencySeries regenerates Figure 5's 12 panels: join
// latency over time for Spark and Flink.
func BenchmarkFig5JoinLatencySeries(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkExp3LargeWindows regenerates Experiment 3: the (60s,60s) window
// with Spark's caching/recompute/inverse-reduce strategies, Storm's OOM
// without spillable state, and Flink's indifference.
func BenchmarkExp3LargeWindows(b *testing.B) { runExperiment(b, "exp3") }

// BenchmarkExp4DataSkew regenerates Experiment 4: single-key skew pins
// Storm and Flink to one slot while Spark's tree aggregate scales.
func BenchmarkExp4DataSkew(b *testing.B) { runExperiment(b, "exp4") }

// BenchmarkFig6FluctuatingWorkload regenerates Figure 6 / Experiment 5:
// event-time latency under the 0.84M -> 0.28M -> 0.84M ev/s schedule.
func BenchmarkFig6FluctuatingWorkload(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7UnsustainableEventVsProcessing regenerates Figure 7: under
// overload, event-time latency diverges while processing-time latency
// stays flat.
func BenchmarkFig7UnsustainableEventVsProcessing(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8EventVsProcessingTime regenerates Figure 8 / Experiment 6:
// both latency definitions side by side per engine.
func BenchmarkFig8EventVsProcessingTime(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9ThroughputSeries regenerates Figure 9 / Experiment 8: the
// pull-rate-over-time comparison (Storm fluctuates, Flink does not).
func BenchmarkFig9ThroughputSeries(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10ResourceUsage regenerates Figure 10: per-node CPU and
// network usage during the 4-node aggregation.
func BenchmarkFig10ResourceUsage(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11SparkSchedulerDelay regenerates Figure 11: Spark's
// scheduler delay coupling to its ingestion rate at overload onset.
func BenchmarkFig11SparkSchedulerDelay(b *testing.B) { runExperiment(b, "fig11") }
