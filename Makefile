# Repro build/test entry points.  `make ci` is the gate every change must
# pass: static checks, a full build, the test suite, a race pass over the
# concurrent executor and control-plane paths, and a bench smoke that keeps
# the zero-allocation hot-path benchmarks compiling and honest.
# `make smoke` boots the distributed controller (sdpsd + 2 agents) and
# byte-compares its table1 artifact against a direct sdpsbench run.

GO ?= go

.PHONY: ci vet build test bench-smoke bench race smoke scenario-validate

ci: vet build test race bench-smoke scenario-validate

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# One iteration of the hot-path microbenchmarks with -benchmem, so an
# allocation regression shows up as a non-zero allocs/op in CI logs.
bench-smoke:
	$(GO) test -run=NONE -bench='BenchmarkQueuePushPop|BenchmarkGeneratorTick|BenchmarkWindowAggregate' \
		-benchtime=1x -benchmem ./internal/queue/ ./internal/generator/ ./internal/window/

# The full paper-artefact benchmark suite (quick scale).
bench:
	$(GO) test -run=NONE -bench=. -benchmem .

# Race-check the parallel experiment executor and the coordinator/agent
# control plane (ctl runs -short: the synthetic lease/failover tests cover
# the concurrency; the byte-identity integration tests run in `test`).
race:
	GOMAXPROCS=4 $(GO) test -race ./internal/scenario/ -run 'TestTable1Shape'
	GOMAXPROCS=4 $(GO) test -race ./internal/core/ -run 'TestReplicate|TestExp4Shape'
	$(GO) test -race -short ./internal/ctl/

# Every shipped scenario spec must parse, validate and compile.
scenario-validate:
	$(GO) run ./cmd/sdpsbench -scenario-validate examples/scenarios/*.json

# End-to-end controller smoke: sdpsd + 2 in-process agents run table1 and a
# scenario spec at quick scale; each fetched artifact must be byte-identical
# to the corresponding direct sdpsbench run.
smoke:
	scripts/smoke-ctl.sh
