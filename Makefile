# Repro build/test entry points.  `make ci` is the gate every change must
# pass: static checks, a full build, the test suite, a race pass over the
# concurrent executor and control-plane paths, and a bench smoke that FAILS
# if any pinned zero-allocation hot-path benchmark regresses to >0
# allocs/op.  `make smoke` boots the distributed controller (sdpsd + 2
# agents) and byte-compares its table1 artifact against a direct sdpsbench
# run.  `make bench-json` snapshots the headline benchmarks into a
# BENCH_<date>.json for the perf trajectory; `make compare-gate` diffs a
# fresh snapshot against the newest committed one and fails on regression
# (tolerances in scripts/gate-thresholds.json).

GO ?= go

.PHONY: ci vet build test bench-smoke bench bench-json race smoke scenario-validate chaos compare-gate fuzz profile

ci: vet build test race bench-smoke fuzz scenario-validate chaos compare-gate

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# One iteration of the hot-path microbenchmarks with -benchmem; fails on
# any non-zero allocs/op (the alloc-regression gate).
bench-smoke:
	scripts/bench-smoke.sh

# The full paper-artefact benchmark suite (quick scale).
bench:
	$(GO) test -run=NONE -bench=. -benchmem .

# Snapshot the headline benchmarks (allocs/op, B/op, wall, headline
# metrics) into BENCH_<date>.json; commit it after perf-relevant PRs.
bench-json:
	scripts/bench-baseline.sh

# Profile a representative run (table1, quick scale) with the bench
# binary's own -cpuprofile/-memprofile flags; inspect with
# `go tool pprof out/profile/{cpu,mem}.pprof`.  Override the experiment
# or scale with PROFILE_ARGS="-exp fig9 -scale full".
PROFILE_ARGS ?= -exp table1
profile:
	mkdir -p out/profile
	$(GO) run ./cmd/sdpsbench $(PROFILE_ARGS) \
		-cpuprofile out/profile/cpu.pprof -memprofile out/profile/mem.pprof > out/profile/run.txt
	@echo "profiles: out/profile/cpu.pprof out/profile/mem.pprof (run text in out/profile/run.txt)"

# Perf-regression gate: fresh benchmark snapshot compared against the
# newest committed BENCH_*.json via `sdpsreport compare --gate`
# (tolerances in scripts/gate-thresholds.json).  Fails on regression or
# on benchmark-set drift without a new committed baseline.
compare-gate:
	scripts/compare-gate.sh

# Race-check the parallel experiment executor, the speculative
# sustainable-throughput search (whose probe-arena pool is shared across
# speculation workers), the flat keyed-state tables, and the
# coordinator/agent control plane (ctl runs -short: the synthetic
# lease/failover tests cover the concurrency; the byte-identity
# integration tests run in `test`).
race:
	GOMAXPROCS=4 $(GO) test -race ./internal/par/
	GOMAXPROCS=4 $(GO) test -race ./internal/flat/
	GOMAXPROCS=4 $(GO) test -race ./internal/driver/ -run 'TestSpeculative|TestWarmStart|TestProbe'
	GOMAXPROCS=4 $(GO) test -race ./internal/scenario/ -run 'TestTable1Shape'
	GOMAXPROCS=4 $(GO) test -race ./internal/core/ -run 'TestReplicate|TestExp4Shape'
	$(GO) test -race -short ./internal/ctl/

# Seed-corpus fuzz pass: each fuzz target's seed corpus runs as unit
# tests, guarding the decode → Validate → evaluate paths (the
# coordinator's validateSpec among them) against panics on malformed
# fault schedules and scenario JSON.  Longer exploratory runs:
# `go test -fuzz FuzzSpecJSON ./internal/scenario/`.
fuzz:
	$(GO) test -run 'FuzzScheduleValidate|FuzzRescaleValidate' ./internal/fault/
	$(GO) test -run 'FuzzSpecJSON' ./internal/scenario/

# Every shipped scenario spec must parse, validate and compile.
scenario-validate:
	$(GO) run ./cmd/sdpsbench -scenario-validate examples/scenarios/*.json

# End-to-end controller smoke: sdpsd + 2 in-process agents run table1 and a
# scenario spec at quick scale; each fetched artifact must be byte-identical
# to the corresponding direct sdpsbench run.
smoke:
	scripts/smoke-ctl.sh

# Chaos smoke: the crash-recovery scenario (engine faults injected by its
# fault schedule) runs while the external agent is SIGKILLed/restarted and
# the coordinator is SIGKILLed and resumed from its journal; the artifact
# must still be byte-identical to a direct run.  See DESIGN-FAULT.md.
chaos:
	scripts/chaos-smoke.sh
