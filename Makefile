# Repro build/test entry points.  `make ci` is the gate every change must
# pass: static checks, a full build, the test suite, and a bench smoke
# that keeps the zero-allocation hot-path benchmarks compiling and honest.

GO ?= go

.PHONY: ci vet build test bench-smoke bench race

ci: vet build test bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# One iteration of the hot-path microbenchmarks with -benchmem, so an
# allocation regression shows up as a non-zero allocs/op in CI logs.
bench-smoke:
	$(GO) test -run=NONE -bench='BenchmarkQueuePushPop|BenchmarkGeneratorTick|BenchmarkWindowAggregate' \
		-benchtime=1x -benchmem ./internal/queue/ ./internal/generator/ ./internal/window/

# The full paper-artefact benchmark suite (quick scale).
bench:
	$(GO) test -run=NONE -bench=. -benchmem .

# Race-check the parallel experiment executor paths.
race:
	GOMAXPROCS=4 $(GO) test -race ./internal/core/ -run 'TestTable1Shape|TestReplicate|TestExp4Shape'
