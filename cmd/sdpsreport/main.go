// Command sdpsreport renders the paper-versus-measured markdown report —
// the generator behind EXPERIMENTS.md — and compares run artifacts.
//
// Three modes:
//
//	sdpsreport -scale full -o EXPERIMENTS.md
//	    Run the suite in-process and render the report (the classical path).
//
//	sdpsreport -from <data-dir|url>[/<run-id>] [-o FILE]
//	    Render the same report from completed coordinator runs without
//	    executing anything: cell results are fetched from the run store and
//	    re-assembled.  With a pinned run ID the report covers that run's
//	    experiment only; with a whole store, experiments that have no
//	    completed run at the requested seed/scale fall back to direct
//	    execution (noted on stderr).
//
//	sdpsreport compare [-gate thresholds.json] [-o FILE] <runA> <runB>
//	    Side-by-side comparison of two artifacts.  Either side may be a
//	    committed BENCH_*.json baseline, an `sdpsbench -json` artifact
//	    file, <data-dir>/<run-id>, or http(s)://coordinator/<run-id>.
//	    With -gate, exits 1 when a deviation breaches its tolerance.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/compare"
	"repro/internal/core"
	// Registers the grid experiments declared as scenario specs.
	_ "repro/internal/scenario"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		runCompare(os.Args[2:])
		return
	}
	runReport(os.Args[1:])
}

func runReport(argv []string) {
	fs := flag.NewFlagSet("sdpsreport", flag.ExitOnError)
	var (
		scale = fs.String("scale", "full", "fidelity: quick | full")
		seed  = fs.Uint64("seed", 42, "simulation seed")
		out   = fs.String("o", "", "output file (default stdout)")
		from  = fs.String("from", "", "render from a coordinator data dir or URL, optionally /<run-id>; no experiments execute")
		only  = fs.String("only", "", "comma-separated experiment IDs to restrict the report to")
		date  = fs.String("date", "", "footer date, YYYY-MM-DD (default today; set for reproducible bytes)")
	)
	fs.Parse(argv)
	if fs.NArg() > 0 {
		fatalf("unexpected argument %q (did you mean `sdpsreport compare`?)", fs.Arg(0))
	}

	if *date == "" {
		*date = time.Now().UTC().Format("2006-01-02")
	}
	opts := compare.SuiteOptions{Scale: *scale, Seed: *seed, Date: *date}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			if id = strings.TrimSpace(id); id != "" {
				opts.Only = append(opts.Only, id)
			}
		}
	}

	var text string
	var err error
	if *from != "" {
		text, err = reportFrom(*from, opts)
	} else {
		coreOpts := core.Options{Seed: *seed}
		if *scale == "full" {
			coreOpts.Scale = core.Full
		}
		text, err = compare.RenderSuite(loggedDirect(coreOpts), opts)
	}
	if err != nil {
		fatalf("%v", err)
	}
	emit(*out, text, "report")
}

// loggedDirect is the in-process getter with the classical progress lines.
func loggedDirect(o core.Options) compare.Getter {
	direct := compare.DirectGetter(o)
	return func(id string) (core.Artifact, error) {
		fmt.Fprintf(os.Stderr, "running %s...\n", id)
		return direct(id)
	}
}

// reportFrom renders from stored runs.  A pinned run ID restricts the
// report to that run; a whole store renders the full suite (or -only),
// falling back to direct execution per missing experiment.
func reportFrom(ref string, opts compare.SuiteOptions) (string, error) {
	src, runID, err := compare.ParseRef(ref)
	if err != nil {
		return "", err
	}
	if runID != "" {
		return compare.RenderRunReport(src, runID, opts.Date)
	}
	coreOpts := core.Options{Seed: opts.Seed}
	if opts.Scale == "full" {
		coreOpts.Scale = core.Full
	}
	get := compare.FallbackGetter(
		func(id string) (core.Artifact, error) {
			a, err := compare.StoreGetter(src, opts.Seed, opts.Scale)(id)
			if err == nil {
				fmt.Fprintf(os.Stderr, "loaded %s from %s\n", id, ref)
			}
			return a, err
		},
		loggedDirect(coreOpts),
		func(id string, err error) {
			fmt.Fprintf(os.Stderr, "no stored run for %s; falling back to direct execution\n", id)
		},
	)
	return compare.RenderSuite(get, opts)
}

func runCompare(argv []string) {
	fs := flag.NewFlagSet("sdpsreport compare", flag.ExitOnError)
	var (
		out   = fs.String("o", "", "output file (default stdout)")
		gate  = fs.String("gate", "", "thresholds.json; exit 1 when a deviation breaches its tolerance")
		coord = fs.String("coord", "", "coordinator URL for bare run-id arguments")
	)
	fs.Parse(argv)
	if fs.NArg() != 2 {
		fatalf("compare needs exactly two references (baseline, candidate); got %d", fs.NArg())
	}

	a, err := compare.Load(fs.Arg(0), *coord)
	if err != nil {
		fatalf("%v", err)
	}
	b, err := compare.Load(fs.Arg(1), *coord)
	if err != nil {
		fatalf("%v", err)
	}
	c := compare.Align(a, b)
	emit(*out, compare.Render(c), "comparison")

	if *gate != "" {
		t, err := compare.LoadThresholds(*gate)
		if err != nil {
			fatalf("%v", err)
		}
		vs := t.Check(c)
		fmt.Fprint(os.Stderr, compare.RenderViolations(vs))
		if len(vs) > 0 {
			os.Exit(1)
		}
	}
}

// emit writes text to stdout or, atomically (temp file + rename), to a file.
func emit(out, text, what string) {
	if out == "" {
		fmt.Print(text)
		return
	}
	dir := filepath.Dir(out)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(out)+".tmp-*")
	if err != nil {
		fatalf("write %s: %v", out, err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.WriteString(text); err != nil {
		tmp.Close()
		fatalf("write %s: %v", out, err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		fatalf("write %s: %v", out, err)
	}
	if err := tmp.Close(); err != nil {
		fatalf("write %s: %v", out, err)
	}
	if err := os.Rename(tmp.Name(), out); err != nil {
		fatalf("write %s: %v", out, err)
	}
	fmt.Fprintf(os.Stderr, "%s written to %s\n", what, out)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sdpsreport: "+format+"\n", args...)
	os.Exit(1)
}
