// Command sustain bisects the maximum sustainable throughput (the paper's
// Definition 5) of one engine × cluster-size × query deployment and prints
// the search outcome plus the final run's latency summary.
//
// Usage:
//
//	sustain -engine flink -workers 4 -query aggregation
//	sustain -engine spark -workers 8 -query join -selectivity 0.05
//	sustain -engine storm -workers 2 -query aggregation -window 60s -slide 60s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/generator"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	var (
		engineName  = flag.String("engine", "flink", "engine model: storm | spark | flink")
		workers     = flag.Int("workers", 2, "worker nodes (the paper used 2, 4, 8)")
		queryName   = flag.String("query", "aggregation", "query: aggregation | join")
		window      = flag.Duration("window", 8*time.Second, "window size")
		slide       = flag.Duration("slide", 4*time.Second, "window slide")
		selectivity = flag.Float64("selectivity", 0.05, "join selectivity in (0,1]")
		skew        = flag.Bool("skew", false, "single-key input (Experiment 4)")
		lo          = flag.Float64("lo", 0.05e6, "search floor, events/second")
		hi          = flag.Float64("hi", 1.6e6, "search ceiling, events/second")
		res         = flag.Float64("resolution", 0.02, "relative search resolution")
		probe       = flag.Duration("probe", 2*time.Minute, "virtual duration per probe run")
		seed        = flag.Uint64("seed", 42, "simulation seed")
	)
	flag.Parse()

	eng, err := core.EngineByName(*engineName)
	if err != nil {
		fatalf("%v", err)
	}

	var q workload.Query
	switch *queryName {
	case "aggregation":
		q, err = workload.NewAggregation(*window, *slide)
	case "join":
		q, err = workload.NewJoin(*window, *slide, *selectivity)
	default:
		fatalf("unknown -query %q (aggregation | join)", *queryName)
	}
	if err != nil {
		fatalf("%v", err)
	}

	cfg := driver.Config{Seed: *seed, Workers: *workers, Query: q}
	if *skew {
		cfg.Keys = generator.SingleKey{K: 1}
	}

	fmt.Printf("searching sustainable throughput: %s, %d workers, %s%s\n",
		eng.Name(), *workers, q, map[bool]string{true: ", single-key skew", false: ""}[*skew])
	start := time.Now()
	rate, last, err := driver.FindSustainable(eng, cfg, driver.SearchConfig{
		Lo: *lo, Hi: *hi, Resolution: *res, ProbeRunFor: *probe,
	})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("search took %v\n\n", time.Since(start).Round(time.Millisecond))

	if rate == 0 {
		fmt.Printf("no sustainable rate found at or above the floor %.3g ev/s\n", *lo)
		if last != nil && last.Failed {
			fmt.Printf("floor probe failed: %s\n", last.FailReason)
		}
		os.Exit(2)
	}
	fmt.Printf("maximum sustainable throughput: %.3f M events/s\n\n", rate/1e6)
	if last != nil {
		fmt.Print(report.RunSummary(last))
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sustain: "+format+"\n", args...)
	os.Exit(1)
}
