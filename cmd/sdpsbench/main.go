// Command sdpsbench runs the benchmark suite's experiments — one per table
// and figure of "Benchmarking Distributed Stream Data Processing Systems"
// (Karimov et al., ICDE 2018) — and prints the paper-shaped artefact.
//
// Usage:
//
//	sdpsbench -list
//	sdpsbench -exp table1
//	sdpsbench -exp table1 -json            # canonical artifact encoding
//	sdpsbench -exp fig9 -scale full -csv out/
//	sdpsbench -all -scale quick
//	sdpsbench -scenario examples/scenarios/skew-sweep.json
//	sdpsbench -scenario-validate examples/scenarios/*.json
//
// -json prints the same canonical artifact bytes the distributed
// controller (sdpsd/sdpsctl) stores and serves, so
// `sdpsbench -exp table1 -json` and `sdpsctl fetch <run>` of an equivalent
// run compare byte-for-byte.  The same holds for -scenario: a scenario
// spec runs locally here or distributed via `sdpsctl submit -scenario`,
// with byte-identical artifacts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/scenario"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments and exit")
		exp      = flag.String("exp", "", "experiment id to run (see -list)")
		all      = flag.Bool("all", false, "run every experiment in paper order")
		scenFile = flag.String("scenario", "", "run a declarative scenario spec from this JSON file")
		validate = flag.Bool("scenario-validate", false, "validate the scenario spec files given as arguments and exit")
		scale    = flag.String("scale", "quick", "fidelity: quick | full")
		seed     = flag.Uint64("seed", 42, "simulation seed (same seed, same artefact)")
		csv      = flag.String("csv", "", "directory to write figure series CSVs into")
		svg      = flag.String("svg", "", "directory to write figure SVGs into")
		reps     = flag.Int("replicate", 0, "run the experiment N times with different seeds and report cross-seed spread")
		asJSON   = flag.Bool("json", false, "print the canonical machine-readable artifact instead of text")
		verbose  = flag.Bool("v", false, "report each finished experiment cell on stderr")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatalf("-cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("-cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatalf("-memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC() // settle to live objects before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatalf("-memprofile: %v", err)
			}
		}()
	}

	if *list {
		for _, e := range core.Experiments() {
			fmt.Printf("%-8s %s\n         %s\n", e.ID, e.Title, e.Description)
		}
		return
	}

	if *validate {
		files := flag.Args()
		if len(files) == 0 {
			fatalf("-scenario-validate needs spec files as arguments")
		}
		for _, f := range files {
			s, err := scenario.LoadFile(f)
			if err != nil {
				fatalf("%v", err)
			}
			e, err := scenario.Compile(s)
			if err != nil {
				fatalf("%s: %v", f, err)
			}
			fmt.Printf("%s: ok — %s, %d cells, %d seed(s)\n",
				f, s.Name, len(e.Cells(core.Options{}.WithDefaults())), s.Seeds)
		}
		return
	}

	// Ctrl-C cancels the in-flight cells (the executor pool stops claiming
	// work and the driver halts mid-simulation) instead of leaving worker
	// goroutines running to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := core.Options{Seed: *seed}
	var err error
	if opts.Scale, err = core.ParseScale(*scale); err != nil {
		fatalf("%v", err)
	}

	// Resolve what to run: experiments by registry ID, or one compiled
	// scenario spec — both are core.Experiments from here on.
	var exps []core.Experiment
	switch {
	case *scenFile != "":
		if *exp != "" || *all {
			fatalf("-scenario is exclusive with -exp/-all")
		}
		s, err := scenario.LoadFile(*scenFile)
		if err != nil {
			fatalf("%v", err)
		}
		if *reps > 0 && s.Seeds > 1 {
			fatalf("scenario %s already declares %d replication seeds; drop -replicate", s.Name, s.Seeds)
		}
		e, err := scenario.Compile(s)
		if err != nil {
			fatalf("%v", err)
		}
		exps = []core.Experiment{e}
	case *all:
		exps = core.Experiments()
	case *exp != "":
		e, err := core.Lookup(*exp)
		if err != nil {
			fatalf("%v", err)
		}
		exps = []core.Experiment{e}
	default:
		fatalf("nothing to do: pass -exp <id>, -all, -scenario <file>, or -list")
	}

	if *reps > 0 {
		for _, e := range exps {
			// Replicated's artefact text is the cross-seed spread table.
			out, err := core.Replicated(e, *reps).RunContext(ctx, opts, nil)
			if errors.Is(err, context.Canceled) {
				fatalf("%s: interrupted", e.ID)
			}
			if err != nil {
				fatalf("%v", err)
			}
			fmt.Println(out.Text)
		}
		return
	}

	var progress core.Progress
	if *verbose {
		progress = func(ev core.CellEvent) {
			status := "done"
			if ev.Err != nil {
				status = "error: " + ev.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "sdpsbench: %s cell %s [%d/%d] %s\n",
				ev.Experiment, ev.Cell, ev.Index+1, ev.Total, status)
		}
	}

	for _, e := range exps {
		id := e.ID
		start := time.Now()
		out, err := e.RunContext(ctx, opts, progress)
		if errors.Is(err, context.Canceled) {
			fatalf("%s: interrupted", id)
		}
		if err != nil {
			fatalf("%s: %v", id, err)
		}
		if *asJSON {
			data, err := core.NewArtifact(e, opts, out).Encode()
			if err != nil {
				fatalf("%s: %v", id, err)
			}
			os.Stdout.Write(data)
		} else {
			fmt.Printf("== %s (%s, %v)\n%s\n", e.Title, *scale, time.Since(start).Round(time.Millisecond), out.Text)
		}
		if *csv != "" && out.CSV != "" {
			if err := os.MkdirAll(*csv, 0o755); err != nil {
				fatalf("mkdir %s: %v", *csv, err)
			}
			path := filepath.Join(*csv, id+".csv")
			if err := os.WriteFile(path, []byte(out.CSV), 0o644); err != nil {
				fatalf("write %s: %v", path, err)
			}
			if !*asJSON {
				fmt.Printf("   series written to %s\n\n", path)
			}
		}
		if *svg != "" {
			if doc := out.SVG(); doc != "" {
				if err := os.MkdirAll(*svg, 0o755); err != nil {
					fatalf("mkdir %s: %v", *svg, err)
				}
				path := filepath.Join(*svg, id+".svg")
				if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
					fatalf("write %s: %v", path, err)
				}
				if !*asJSON {
					fmt.Printf("   figure written to %s\n\n", path)
				}
			}
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sdpsbench: "+format+"\n", args...)
	os.Exit(1)
}
