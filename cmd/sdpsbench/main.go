// Command sdpsbench runs the benchmark suite's experiments — one per table
// and figure of "Benchmarking Distributed Stream Data Processing Systems"
// (Karimov et al., ICDE 2018) — and prints the paper-shaped artefact.
//
// Usage:
//
//	sdpsbench -list
//	sdpsbench -exp table1
//	sdpsbench -exp fig9 -scale full -csv out/
//	sdpsbench -all -scale quick
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available experiments and exit")
		exp   = flag.String("exp", "", "experiment id to run (see -list)")
		all   = flag.Bool("all", false, "run every experiment in paper order")
		scale = flag.String("scale", "quick", "fidelity: quick | full")
		seed  = flag.Uint64("seed", 42, "simulation seed (same seed, same artefact)")
		csv   = flag.String("csv", "", "directory to write figure series CSVs into")
		svg   = flag.String("svg", "", "directory to write figure SVGs into")
		reps  = flag.Int("replicate", 0, "run the experiment N times with different seeds and report cross-seed spread")
	)
	flag.Parse()

	if *list {
		for _, e := range core.Experiments() {
			fmt.Printf("%-8s %s\n         %s\n", e.ID, e.Title, e.Description)
		}
		return
	}

	opts := core.Options{Seed: *seed}
	switch *scale {
	case "quick":
		opts.Scale = core.Quick
	case "full":
		opts.Scale = core.Full
	default:
		fatalf("unknown -scale %q (quick | full)", *scale)
	}

	var ids []string
	switch {
	case *all:
		for _, e := range core.Experiments() {
			ids = append(ids, e.ID)
		}
	case *exp != "":
		ids = []string{*exp}
	default:
		fatalf("nothing to do: pass -exp <id>, -all, or -list")
	}

	if *reps > 0 {
		for _, id := range ids {
			rep, err := core.Replicate(id, opts, *reps)
			if err != nil {
				fatalf("%v", err)
			}
			fmt.Println(rep.Text())
		}
		return
	}

	for _, id := range ids {
		e, err := core.Lookup(id)
		if err != nil {
			fatalf("%v", err)
		}
		start := time.Now()
		out, err := e.Run(opts)
		if err != nil {
			fatalf("%s: %v", id, err)
		}
		fmt.Printf("== %s (%s, %v)\n%s\n", e.Title, *scale, time.Since(start).Round(time.Millisecond), out.Text)
		if *csv != "" && out.CSV != "" {
			if err := os.MkdirAll(*csv, 0o755); err != nil {
				fatalf("mkdir %s: %v", *csv, err)
			}
			path := filepath.Join(*csv, id+".csv")
			if err := os.WriteFile(path, []byte(out.CSV), 0o644); err != nil {
				fatalf("write %s: %v", path, err)
			}
			fmt.Printf("   series written to %s\n\n", path)
		}
		if *svg != "" {
			if doc := out.SVG(); doc != "" {
				if err := os.MkdirAll(*svg, 0o755); err != nil {
					fatalf("mkdir %s: %v", *svg, err)
				}
				path := filepath.Join(*svg, id+".svg")
				if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
					fatalf("write %s: %v", path, err)
				}
				fmt.Printf("   figure written to %s\n\n", path)
			}
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sdpsbench: "+format+"\n", args...)
	os.Exit(1)
}
