// Command genload is the standalone external load generator: it runs the
// paper's distributed data generator (Section III-A) against in-memory
// driver queues on virtual time and emits either the generated events
// themselves (one JSON object per line) or per-second generation
// statistics.  It exercises exactly the driver-side data path a real
// engine binding would consume.
//
// Usage:
//
//	genload -rate 100000 -for 10s -events | head
//	genload -rate 840000 -for 60s -fluctuate -low 280000
//	genload -rate 500000 -for 30s -ads 0.3 -match 0.05 -keys zipf
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/generator"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/tuple"
)

// eventJSON is the wire shape of one emitted event.
type eventJSON struct {
	Stream    string `json:"stream"`
	UserID    int64  `json:"userID"`
	GemPackID int64  `json:"gemPackID"`
	Price     int64  `json:"price,omitempty"`
	EventTime int64  `json:"eventTimeMs"`
	Weight    int64  `json:"weight"`
}

func main() {
	var (
		rate      = flag.Float64("rate", 100_000, "generation rate, real events/second")
		low       = flag.Float64("low", 0, "low rate for -fluctuate (default rate/3)")
		runFor    = flag.Duration("for", 10*time.Second, "virtual generation duration")
		instances = flag.Int("instances", 16, "parallel generator instances")
		weight    = flag.Int64("weight", 100, "real events per simulated tuple")
		adsShare  = flag.Float64("ads", 0, "fraction of events on the ADS stream")
		match     = flag.Float64("match", 0.05, "probability an ad matches a recent purchase")
		keys      = flag.String("keys", "normal", "gemPackID distribution: normal | uniform | zipf | single")
		nKeys     = flag.Int("nkeys", 1000, "gemPackID cardinality")
		fluctuate = flag.Bool("fluctuate", false, "use the Experiment 5 high-low-high schedule")
		events    = flag.Bool("events", false, "emit every event as JSON instead of statistics")
		seed      = flag.Uint64("seed", 42, "generator seed")
	)
	flag.Parse()

	var dist generator.KeyDist
	switch *keys {
	case "normal":
		dist = generator.NormalKeys{N: *nKeys}
	case "uniform":
		dist = generator.UniformKeys{N: *nKeys}
	case "zipf":
		dist = &generator.ZipfKeys{N: *nKeys, S: 1.2}
	case "single":
		dist = generator.SingleKey{K: 1}
	default:
		fatalf("unknown -keys %q", *keys)
	}

	var schedule generator.RateSchedule = generator.ConstantRate(*rate)
	if *fluctuate {
		l := *low
		if l <= 0 {
			l = *rate / 3
		}
		schedule = generator.PaperFluctuation(*runFor, *rate, l)
	}

	k := sim.NewKernel(*seed)
	queues := queue.NewGroup("gen", *instances, 0)
	gen, err := generator.New(k, generator.Config{
		Instances:      *instances,
		Tick:           10 * time.Millisecond,
		EventsPerTuple: *weight,
		Rate:           schedule,
		Keys:           dist,
		Users:          100_000,
		AdsShare:       *adsShare,
		MatchProb:      *match,
		MaxPrice:       100,
	}, queues)
	if err != nil {
		fatalf("%v", err)
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	enc := json.NewEncoder(out)

	// Drain queue by queue in batches — the per-partition consumption
	// pattern an external engine binding would use; each instance's
	// stream is emitted in event-time order.
	batch := tuple.NewBatch(4096)
	drain := func(now sim.Time) (n int, w int64) {
		for _, q := range queues.Queues() {
			for {
				batch.Reset()
				if q.PopBatch(batch, 4096) == 0 {
					break
				}
				c := batch.Columns()
				for i := 0; i < batch.Len(); i++ {
					n++
					w += c.Weight[i]
					if *events {
						enc.Encode(eventJSON{
							Stream:    c.Stream[i].String(),
							UserID:    c.UserID[i],
							GemPackID: c.GemPackID[i],
							Price:     c.Price[i],
							EventTime: int64(c.EventTime[i] / time.Millisecond),
							Weight:    c.Weight[i],
						})
					}
				}
			}
		}
		return
	}

	k.Every(time.Second, func(now sim.Time) {
		n, w := drain(now)
		if !*events {
			fmt.Fprintf(out, "t=%-6v tuples=%-8d events=%-10d rate=%.3g ev/s\n",
				now, n, w, float64(w))
		}
	})
	gen.Start()
	k.Run(*runFor)
	gen.Stop()
	if n, w := drain(k.Now()); !*events && n > 0 {
		fmt.Fprintf(out, "tail    tuples=%-8d events=%d\n", n, w)
	}
	if !*events {
		fmt.Fprintf(out, "total generated: %d real events over %v (avg %.3g ev/s)\n",
			gen.TotalWeight(), *runFor, float64(gen.TotalWeight())/runFor.Seconds())
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "genload: "+format+"\n", args...)
	os.Exit(1)
}
