// Command sdpsd is the experiment coordinator daemon: it owns the job
// queue, the run registry and the content-addressed artifact store, serves
// the control REST API (see internal/ctl), and optionally hosts in-process
// agents so a single machine is a complete deployment.
//
// Usage:
//
//	sdpsd -listen 127.0.0.1:8372 -data ./sdpsd-data -agents 2
//
// Remote agents join with `sdpsctl agent -coord http://host:8372`; clients
// submit and fetch runs with `sdpsctl submit/status/watch/fetch`.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/ctl"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:8372", "address to serve the control API on")
		data        = flag.String("data", "./sdpsd-data", "artifact/run store directory")
		agents      = flag.Int("agents", 0, "number of in-process agents to host")
		leaseTTL    = flag.Duration("lease-ttl", 30*time.Second, "cell lease TTL; an agent silent this long forfeits its leases")
		maxAttempts = flag.Int("max-attempts", 3, "executions per cell (failures + expiries) before the run fails")
		cacheSize   = flag.Int("cell-cache", 4096, "finished-cell result cache entries shared by the in-process agents (0 disables)")
		warmStart   = flag.Bool("warm-start", false, "seed sustainable-throughput searches from prior brackets in the cell cache (faster, but artifacts are no longer byte-identical to cold runs)")
	)
	flag.Parse()
	if *warmStart && *cacheSize <= 0 {
		fatalf("-warm-start requires a cell cache: set -cell-cache > 0")
	}

	store, err := ctl.NewStore(*data)
	if err != nil {
		fatalf("%v", err)
	}
	coord, err := ctl.NewCoordinator(store, ctl.CoordinatorOptions{
		LeaseTTL:    *leaseTTL,
		MaxAttempts: *maxAttempts,
	})
	if err != nil {
		fatalf("%v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	coord.Start(ctx)

	var cache *ctl.ResultCache
	if *cacheSize > 0 {
		cache = ctl.NewResultCache(*cacheSize)
	}
	for i := 0; i < *agents; i++ {
		a := &ctl.Agent{Name: fmt.Sprintf("local-%d", i), API: coord, Cache: cache, WarmStart: *warmStart}
		go func() {
			if err := a.Run(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "sdpsd: agent %s: %v\n", a.Name, err)
			}
		}()
	}

	srv := &http.Server{Addr: *listen, Handler: ctl.NewHandler(coord)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "sdpsd: listening on %s, store %s, %d in-process agent(s), %d run(s) resumed\n",
		*listen, *data, *agents, len(coord.Runs()))

	select {
	case err := <-errc:
		fatalf("serve: %v", err)
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutCtx)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sdpsd: "+format+"\n", args...)
	os.Exit(1)
}
