// Command sdpsctl is the client CLI for the experiment coordinator
// (sdpsd): submit runs, inspect and watch their progress, fetch artifacts,
// and host agents on remote machines.
//
// Usage:
//
//	sdpsctl submit table1 --scale quick --seed 42 --watch
//	sdpsctl submit --scenario examples/scenarios/skew-sweep.json --watch
//	sdpsctl submit table1 --replicate 5
//	sdpsctl status [run-0001]
//	sdpsctl watch run-0001
//	sdpsctl abort run-0001 --reason "wrong scale"
//	sdpsctl fetch run-0001 -o table1.json
//	sdpsctl fetch run-0001 --dir ./fetched   # offline `sdpsreport -from ./fetched/run-0001`
//	sdpsctl agent --name worker-a --workers 2
//
// Every subcommand accepts -coord (default http://127.0.0.1:8372, or
// $SDPSD_COORD).  `fetch` prints the canonical artifact bytes, which are
// byte-identical to `sdpsbench -json` with the same experiment, seed and
// scale no matter how many agents executed the run — including runs
// submitted as scenario specs, which travel inside the wire format and
// need no registration on the agents.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	"repro/internal/ctl"
	"repro/internal/scenario"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	verb, args := os.Args[1], os.Args[2:]
	// Accept `sdpsctl submit table1 --scale quick`: positional operands
	// first, then flags.
	var pos []string
	for len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		pos, args = append(pos, args[0]), args[1:]
	}
	switch verb {
	case "submit":
		cmdSubmit(pos, args)
	case "status":
		cmdStatus(pos, args)
	case "watch":
		cmdWatch(pos, args)
	case "abort":
		cmdAbort(pos, args)
	case "fetch":
		cmdFetch(pos, args)
	case "agent":
		cmdAgent(pos, args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: sdpsctl <command> [args]

  submit <experiment> [--scale quick|full] [--seed N] [--replicate N] [--watch] [-q]
  submit --scenario file.json [--scale quick|full] [--seed N] [--watch] [-q]
  status [run-id]
  watch  <run-id>
  abort  <run-id> [--reason TEXT]
  fetch  <run-id> [-o file] [--dir store-dir]
  agent  [--name NAME] [--workers N] [--cell-cache N] [--warm-start]

All commands accept --coord URL (default $SDPSD_COORD or
http://127.0.0.1:8372).`)
	os.Exit(2)
}

// newFlagSet returns a flag set pre-loaded with the shared -coord flag.
func newFlagSet(name string) (*flag.FlagSet, *string) {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	def := os.Getenv("SDPSD_COORD")
	if def == "" {
		def = "http://127.0.0.1:8372"
	}
	coord := fs.String("coord", def, "coordinator base URL")
	return fs, coord
}

func cmdSubmit(pos, args []string) {
	fs, coord := newFlagSet("submit")
	scale := fs.String("scale", "quick", "fidelity: quick | full")
	seed := fs.Uint64("seed", 42, "simulation seed (same seed, same artifact)")
	scenFile := fs.String("scenario", "", "submit a declarative scenario spec from this JSON file")
	replicate := fs.Int("replicate", 0, "run N replication seeds, scheduled as one cell per (seed, cell)")
	watch := fs.Bool("watch", false, "stream progress until the run finishes")
	quiet := fs.Bool("q", false, "print only the run ID")
	fs.Parse(args)
	spec := ctl.RunSpec{Seed: *seed, Scale: *scale, Replicate: *replicate}
	switch {
	case *scenFile != "":
		if len(pos) != 0 {
			fatalf("submit takes either an experiment id or --scenario, not both")
		}
		s, err := scenario.LoadFile(*scenFile)
		if err != nil {
			fatalf("%v", err)
		}
		spec.Scenario = &s
	case len(pos) == 1:
		spec.Experiment = pos[0]
	default:
		fatalf("submit needs exactly one experiment id (see `sdpsbench -list`) or --scenario file.json")
	}
	cl := ctl.NewClient(*coord)
	info, err := cl.Submit(spec)
	if err != nil {
		fatalf("%v", err)
	}
	if *quiet {
		fmt.Println(info.ID)
	} else {
		fmt.Printf("%s submitted: %s (scale %s, seed %d, %d cells)\n",
			info.ID, info.Spec.Experiment, info.Spec.Scale, info.Spec.Seed, info.CellsTotal)
	}
	if *watch {
		watchRun(cl, info.ID, *quiet)
	}
}

func cmdAbort(pos, args []string) {
	fs, coord := newFlagSet("abort")
	reason := fs.String("reason", "", "recorded as the run's failure reason")
	fs.Parse(args)
	if len(pos) != 1 {
		fatalf("abort needs exactly one run id")
	}
	info, err := ctl.NewClient(*coord).Abort(pos[0], *reason)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("%s aborted (%d/%d cells were done): %s\n",
		info.ID, info.CellsDone, info.CellsTotal, info.Error)
}

func cmdStatus(pos, args []string) {
	fs, coord := newFlagSet("status")
	fs.Parse(args)
	cl := ctl.NewClient(*coord)
	if len(pos) == 0 {
		runs, err := cl.Runs()
		if err != nil {
			fatalf("%v", err)
		}
		if len(runs) == 0 {
			fmt.Println("no runs")
			return
		}
		for _, r := range runs {
			line := fmt.Sprintf("%-10s %-8s %-18s seed=%-6d %d/%d cells",
				r.ID, r.Status, r.Spec.Experiment+"/"+r.Spec.Scale, r.Spec.Seed, r.CellsDone, r.CellsTotal)
			if r.Error != "" {
				line += "  error: " + r.Error
			}
			fmt.Println(line)
		}
		return
	}
	info, err := cl.Run(pos[0])
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("%s: %s (scale %s, seed %d) — %s, %d/%d cells\n",
		info.ID, info.Spec.Experiment, info.Spec.Scale, info.Spec.Seed,
		info.Status, info.CellsDone, info.CellsTotal)
	if info.Error != "" {
		fmt.Printf("  error: %s\n", info.Error)
	}
	for _, c := range info.Cells {
		line := fmt.Sprintf("  %-24s %-8s", c.ID, c.Status)
		if c.Agent != "" {
			line += " agent=" + c.Agent
		}
		if c.Attempts > 0 {
			line += fmt.Sprintf(" attempts=%d", c.Attempts)
		}
		fmt.Println(line)
	}
}

func cmdWatch(pos, args []string) {
	fs, coord := newFlagSet("watch")
	fs.Parse(args)
	if len(pos) != 1 {
		fatalf("watch needs exactly one run id")
	}
	watchRun(ctl.NewClient(*coord), pos[0], false)
}

// watchRun streams a run's events to stderr and exits non-zero if the run
// fails, so scripts can gate on it.  The watch reconnects on stream drops
// and coordinator outages (WatchRetry), so a coordinator restart mid-run
// doesn't end it early.
func watchRun(cl *ctl.Client, id string, quiet bool) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var final ctl.RunStatus
	err := cl.WatchRetry(ctx, id, func(ev ctl.Event) {
		switch ev.Type {
		case "cell":
			if !quiet {
				line := fmt.Sprintf("[%d/%d] cell %-24s %s", ev.Done, ev.Total, ev.Cell, ev.CellStatus)
				if ev.Agent != "" {
					line += " (agent " + ev.Agent + ")"
				}
				if ev.Error != "" {
					line += " — " + ev.Error
				}
				fmt.Fprintln(os.Stderr, line)
			}
		case "run":
			final = ev.Status
			if !quiet {
				line := fmt.Sprintf("[%d/%d] run %s: %s", ev.Done, ev.Total, ev.RunID, ev.Status)
				if ev.Error != "" {
					line += " — " + ev.Error
				}
				fmt.Fprintln(os.Stderr, line)
			}
		}
	})
	if err != nil {
		fatalf("watch %s: %v", id, err)
	}
	if final != ctl.RunDone {
		os.Exit(1)
	}
}

func cmdFetch(pos, args []string) {
	fs, coord := newFlagSet("fetch")
	out := fs.String("o", "", "write the artifact here instead of stdout")
	dir := fs.String("dir", "", "also mirror the run's manifest and result objects into this store directory, so `sdpsreport -from <dir>/<run-id>` works offline")
	fs.Parse(args)
	if len(pos) != 1 {
		fatalf("fetch needs exactly one run id")
	}
	cl := ctl.NewClient(*coord)
	data, err := cl.Artifact(pos[0])
	if err != nil {
		fatalf("%v", err)
	}
	if *dir != "" {
		if err := mirrorRun(cl, pos[0], *dir); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "sdpsctl: run %s mirrored into %s\n", pos[0], *dir)
	}
	if *out == "" {
		if *dir == "" {
			os.Stdout.Write(data)
		}
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatalf("%v", err)
	}
}

// mirrorRun copies a run's manifest plus every addressed object (cell
// results and the assembled artifact) from the coordinator into a local
// store directory.  The local copy has the coordinator store's exact
// layout, so every offline reader (`sdpsreport -from`, `sdpsreport
// compare`) accepts it.  Content addressing makes re-fetching idempotent.
func mirrorRun(cl *ctl.Client, runID, dir string) error {
	m, err := cl.Manifest(runID)
	if err != nil {
		return err
	}
	st, err := ctl.NewStore(dir)
	if err != nil {
		return err
	}
	shas := make([]string, 0, len(m.Cells)+1)
	for _, c := range m.Cells {
		if c.ResultSHA != "" {
			shas = append(shas, c.ResultSHA)
		}
	}
	if m.ArtifactSHA != "" {
		shas = append(shas, m.ArtifactSHA)
	}
	for _, sha := range shas {
		data, err := cl.Object(sha)
		if err != nil {
			return err
		}
		got, err := st.PutObject(data)
		if err != nil {
			return err
		}
		if got != sha {
			return fmt.Errorf("object %s came back as %s (corrupt transfer?)", sha, got)
		}
	}
	return st.SaveRun(m)
}

func cmdAgent(pos, args []string) {
	fs, coord := newFlagSet("agent")
	name := fs.String("name", "", "agent name shown in status output (default: hostname)")
	workers := fs.Int("workers", 1, "concurrent cell executors to run")
	cacheSize := fs.Int("cell-cache", 4096, "finished-cell result cache entries, shared by this process's workers (0 disables)")
	warmStart := fs.Bool("warm-start", false, "seed sustainable-throughput searches from prior brackets in the cell cache (faster, but artifacts are no longer byte-identical to cold runs)")
	poll := fs.Duration("poll", 0, "idle re-poll interval (default 50ms); coordinator errors back off exponentially from here")
	fs.Parse(args)
	if len(pos) != 0 {
		fatalf("agent takes no positional arguments")
	}
	if *warmStart && *cacheSize <= 0 {
		fatalf("--warm-start requires a cell cache: set --cell-cache > 0")
	}
	if *name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "agent"
		}
		*name = host
	}
	var cache *ctl.ResultCache
	if *cacheSize > 0 {
		cache = ctl.NewResultCache(*cacheSize)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var wg sync.WaitGroup
	for i := 0; i < *workers; i++ {
		a := &ctl.Agent{Name: fmt.Sprintf("%s-%d", *name, i), API: ctl.NewClient(*coord), Poll: *poll, Cache: cache, WarmStart: *warmStart}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.Run(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "sdpsctl: agent %s: %v\n", a.Name, err)
			}
		}()
	}
	fmt.Fprintf(os.Stderr, "sdpsctl: %d agent worker(s) polling %s (Ctrl-C to stop)\n", *workers, *coord)
	wg.Wait()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sdpsctl: "+format+"\n", args...)
	os.Exit(1)
}
